// The daemon's observability plane end to end: HttpServer protocol behavior
// (including hostile input), ObservabilityHub publish/read semantics, the
// six rloopd endpoints against an in-process daemon on the golden trace, and
// the /events SSE stream delivering the pinned golden alert set.
#include "daemon/observability.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.h"
#include "json_lite.h"
#include "net/http_server.h"
#include "net/pcap.h"
#include "prom_lite.h"
#include "telemetry/build_info.h"
#include "telemetry/exporter.h"
#include "telemetry/registry.h"
#include "util/failpoint.h"

namespace rloop::daemon {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::http_get;
using rloop::testing::is_valid_json;
using rloop::testing::is_valid_prometheus;

std::string golden_path(const std::string& name) {
  return std::string(RLOOP_GOLDEN_DIR) + "/" + name;
}

// Raw TCP client for hostile-input tests: sends arbitrary bytes, reads
// whatever comes back.
class RawClient {
 public:
  ~RawClient() { close_fd(); }

  bool connect_to(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool send_str(const std::string& s) {
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t n =
          ::send(fd_, s.data() + off, s.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Appends received bytes to `acc` until it contains `needle`, EOF, or the
  // timeout. True when the needle arrived.
  bool read_until(const std::string& needle, std::string* acc,
                  int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    while (acc->find(needle) == std::string::npos) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) return false;
      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) return false;
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;  // EOF before the needle
      acc->append(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

  // Reads to EOF (server closes every connection) within the timeout.
  std::string read_to_eof(int timeout_ms) {
    std::string acc;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) break;
      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) break;
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      acc.append(chunk, static_cast<std::size_t>(n));
    }
    return acc;
  }

  void close_fd() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

HttpServer::Options ephemeral() {
  HttpServer::Options o;
  o.port = 0;
  return o;
}

// --- HttpServer protocol -----------------------------------------------------

TEST(HttpServer, ServesRegisteredHandlerWithQuery) {
  HttpServer server(ephemeral());
  server.handle("/hello", [](const HttpRequest& r) {
    HttpResponse resp;
    resp.body = "hi " + r.query;
    return resp;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get(server.port(), "/hello?a=b", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "hi a=b");
  EXPECT_EQ(server.requests_served(), 1u);

  ASSERT_TRUE(http_get(server.port(), "/nope", &status, &body, &error));
  EXPECT_EQ(status, 404);
  server.stop();
}

TEST(HttpServer, RejectsNonGetMethods) {
  HttpServer server(ephemeral());
  server.handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RawClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_str("POST /x HTTP/1.1\r\nHost: a\r\n\r\n"));
  const std::string resp = client.read_to_eof(3000);
  EXPECT_NE(resp.find("405"), std::string::npos) << resp;
  server.stop();
}

TEST(HttpServer, RejectsMalformedRequestLine) {
  HttpServer server(ephemeral());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  for (const char* bad : {"GARBAGE\r\n\r\n", "GET noslash HTTP/1.1\r\n\r\n",
                          "GET / SPDY/3\r\n\r\n"}) {
    RawClient client;
    ASSERT_TRUE(client.connect_to(server.port()));
    ASSERT_TRUE(client.send_str(bad));
    const std::string resp = client.read_to_eof(3000);
    EXPECT_NE(resp.find("400"), std::string::npos) << bad << " -> " << resp;
  }
  EXPECT_GE(server.bad_requests(), 3u);
  server.stop();
}

TEST(HttpServer, OversizedRequestGets431) {
  HttpServer::Options options = ephemeral();
  options.max_request_bytes = 1024;
  HttpServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RawClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  // 8 KiB of header with no terminating blank line.
  std::string huge = "GET / HTTP/1.1\r\n";
  while (huge.size() < 8192) huge += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  ASSERT_TRUE(client.send_str(huge));
  const std::string resp = client.read_to_eof(3000);
  EXPECT_NE(resp.find("431"), std::string::npos) << resp;
  EXPECT_GE(server.bad_requests(), 1u);
  server.stop();
}

TEST(HttpServer, SlowlorisIsCutOffAtTheHeaderDeadline) {
  HttpServer::Options options = ephemeral();
  options.header_deadline_ms = 300;
  HttpServer server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RawClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.send_str("GET / HT"));  // ...and never finish
  const std::string resp = client.read_to_eof(10000);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_NE(resp.find("408"), std::string::npos) << resp;
  // Bounded: deadline (300ms) plus generous scheduling slack, far below the
  // no-deadline forever.
  EXPECT_LT(elapsed_ms, 5000);
  server.stop();
}

TEST(HttpServer, ConnectionCapAnswers503) {
  HttpServer::Options options = ephemeral();
  options.max_connections = 1;
  HttpServer server(options);
  std::atomic<bool> release{false};
  server.handle_stream("/hang", "text/plain",
                       [&](const HttpRequest&, net::HttpStreamWriter& w) {
                         while (w.alive() &&
                                !release.load(std::memory_order_acquire)) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(5));
                         }
                       });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Occupy the single slot and wait until its response header arrives, so
  // the connection is definitely registered.
  RawClient holder;
  ASSERT_TRUE(holder.connect_to(server.port()));
  ASSERT_TRUE(holder.send_str("GET /hang HTTP/1.1\r\nHost: a\r\n\r\n"));
  std::string acc;
  ASSERT_TRUE(holder.read_until("200 OK", &acc, 3000));

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get(server.port(), "/hang", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 503);
  EXPECT_GE(server.rejected_overload(), 1u);

  release.store(true, std::memory_order_release);
  server.stop();
}

TEST(HttpServer, ConcurrentScrapersAllSucceed) {
  telemetry::Registry registry;
  registry.counter("rloop_scrape_total", {}, "scrapes")->inc();
  HttpServer server(ephemeral());
  server.handle("/metrics", [&](const HttpRequest&) {
    HttpResponse resp;
    resp.body = telemetry::to_prometheus(registry.snapshot());
    return resp;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr int kThreads = 8;
  constexpr int kRequests = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kRequests; ++i) {
        int status = 0;
        std::string body;
        std::string err;
        if (http_get(server.port(), "/metrics", &status, &body, &err) &&
            status == 200 && !body.empty()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_GE(server.requests_served(),
            static_cast<std::uint64_t>(kThreads) * kRequests);
  server.stop();
}

// --- ObservabilityHub --------------------------------------------------------

TEST(ObservabilityHub, EventStreamDropsNewestWhenFull) {
  ObservabilityHub hub;
  auto sub = hub.subscribe(/*queue_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    hub.publish_event("alert " + std::to_string(i));
  }
  // Drop-newest: the oldest 4 lines survive.
  std::string line;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sub->pop(line, 100)) << i;
    EXPECT_EQ(line, "alert " + std::to_string(i));
  }
  EXPECT_FALSE(sub->pop(line, 10));
  EXPECT_EQ(sub->take_dropped(), 6u);
  EXPECT_EQ(sub->take_dropped(), 0u);  // reading resets
  EXPECT_EQ(hub.events_dropped_total(), 6u);

  hub.close_events();
  EXPECT_TRUE(sub->closed());
  hub.unsubscribe(sub);
}

TEST(ObservabilityHub, StatusAndLoopsReadBackWhatWasPublished) {
  ObservabilityHub hub;
  StatusSnapshot status;
  EXPECT_FALSE(hub.read_status(status));

  status.started = true;
  status.pushed = 10;
  status.consumed = 8;
  status.dropped = 2;
  status.degrade_tier = 3;
  hub.publish_status(status);
  StatusSnapshot got;
  ASSERT_TRUE(hub.read_status(got));
  EXPECT_TRUE(got.started);
  EXPECT_EQ(got.pushed, got.consumed + got.dropped);
  EXPECT_EQ(got.degrade_tier, 3);

  ObservabilityHub::LoopsView view;
  EXPECT_FALSE(hub.read_loops(view));
  ObservabilityHub::SuspectEntry entry;
  entry.prefix24 = net::Prefix::parse("10.1.2.0/24").value();
  entry.replicas = 5;
  entry.ttl_delta = 3;
  hub.publish_loops({entry}, /*as_of=*/42, /*epoch=*/7, /*truncated=*/true);
  ASSERT_TRUE(hub.read_loops(view));
  ASSERT_EQ(view.entries.size(), 1u);
  EXPECT_EQ(view.entries[0].prefix24.to_string(), "10.1.2.0/24");
  EXPECT_TRUE(view.truncated);
  EXPECT_EQ(view.epoch, 7u);
}

// --- ObservabilityServer endpoints (hub-driven, no daemon) -------------------

TEST(ObservabilityServer, ReadyzTracksLifecycleAndGovernorTier) {
  ObservabilityHub hub;
  telemetry::Registry registry;
  ObservabilityServer server(&hub, &registry);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  int status = 0;
  std::string body;
  // No status published yet: starting.
  ASSERT_TRUE(http_get(server.port(), "/readyz", &status, &body, &error));
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("starting"), std::string::npos);
  // /healthz is alive regardless.
  ASSERT_TRUE(http_get(server.port(), "/healthz", &status, &body, &error));
  EXPECT_EQ(status, 200);
  // /status mirrors "nothing yet" as 503 + JSON.
  ASSERT_TRUE(http_get(server.port(), "/status", &status, &body, &error));
  EXPECT_EQ(status, 503);
  EXPECT_TRUE(is_valid_json(body)) << body;

  StatusSnapshot snap;
  snap.started = true;
  hub.publish_status(snap);
  ASSERT_TRUE(http_get(server.port(), "/readyz", &status, &body, &error));
  EXPECT_EQ(status, 200);

  // Degraded past widen_batching: not ready, reason names the tier.
  snap.degrade_tier = static_cast<int>(DegradeTier::sample_suspects);
  hub.publish_status(snap);
  ASSERT_TRUE(http_get(server.port(), "/readyz", &status, &body, &error));
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("sample_suspects"), std::string::npos) << body;

  // widen_batching itself still counts as ready (shedding, not broken).
  snap.degrade_tier = static_cast<int>(DegradeTier::widen_batching);
  hub.publish_status(snap);
  ASSERT_TRUE(http_get(server.port(), "/readyz", &status, &body, &error));
  EXPECT_EQ(status, 200);

  snap.draining = true;
  hub.publish_status(snap);
  ASSERT_TRUE(http_get(server.port(), "/readyz", &status, &body, &error));
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("draining"), std::string::npos);
  server.stop();
}

TEST(ObservabilityServer, LoopsAndStatusAreStrictJson) {
  ObservabilityHub hub;
  ObservabilityServer server(&hub, nullptr);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  int status = 0;
  std::string body;
  // Empty loops view before any publish.
  ASSERT_TRUE(http_get(server.port(), "/loops", &status, &body, &error));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(is_valid_json(body)) << body;

  ObservabilityHub::SuspectEntry entry;
  entry.prefix24 = net::Prefix::parse("203.0.113.0/24").value();
  entry.first_ts = 1;
  entry.last_ts = 2;
  entry.replicas = 4;
  entry.ttl_delta = -2;
  hub.publish_loops({entry}, 99, 3, false);

  StatusSnapshot snap;
  snap.started = true;
  snap.source = "golden \"quoted\"";  // exercises JSON escaping
  snap.pushed = 5;
  snap.consumed = 5;
  snap.checkpoint_wall_unix_s = 0;  // age must render as null
  hub.publish_status(snap);

  ASSERT_TRUE(http_get(server.port(), "/loops", &status, &body, &error));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(is_valid_json(body)) << body;
  EXPECT_NE(body.find("203.0.113.0/24"), std::string::npos);
  EXPECT_NE(body.find("\"ttl_delta\":-2"), std::string::npos);

  ASSERT_TRUE(http_get(server.port(), "/status", &status, &body, &error));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(is_valid_json(body)) << body;
  EXPECT_NE(body.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(body.find("\"age_s\":null"), std::string::npos);
  server.stop();
}

// --- full integration: daemon + observability plane --------------------------

struct DaemonFixture {
  net::Trace trace;
  telemetry::Registry registry;
  ObservabilityHub hub;
  std::unique_ptr<ObservabilityServer> server;

  explicit DaemonFixture() {
    trace = net::read_pcap(golden_path("golden_trace.pcap"));
    telemetry::register_build_info(&registry);
    server = std::make_unique<ObservabilityServer>(&hub, &registry,
                                                   ObservabilityServer::Options{});
    std::string error;
    if (!server->start(&error)) {
      ADD_FAILURE() << error;
    }
  }
};

TEST(ObservabilityIntegration, EndpointsServeLiveDaemonState) {
  DaemonFixture fx;
  ASSERT_GT(fx.trace.size(), 0u);

  DaemonConfig config;
  Daemon d(config, std::make_unique<ReplaySource>(fx.trace, "golden", 0),
           nullptr, &fx.registry);
  d.attach_observability(&fx.hub);
  const DaemonStats stats = d.run();
  ASSERT_TRUE(stats.invariant_ok());

  int status = 0;
  std::string body, error;

  // /status: strict JSON carrying the final ledger; drained -> not ready.
  ASSERT_TRUE(http_get(fx.server->port(), "/status", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(is_valid_json(body)) << body;
  EXPECT_NE(body.find("\"pushed\":" + std::to_string(stats.pushed)),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"draining\":true"), std::string::npos);
  EXPECT_NE(body.find("\"alerts\":" + std::to_string(stats.alerts)),
            std::string::npos);

  ASSERT_TRUE(http_get(fx.server->port(), "/readyz", &status, &body, &error));
  EXPECT_EQ(status, 503);

  // /metrics: strictly conformant exposition including daemon families,
  // derived quantile summaries, build info, and the plane's own counters.
  ASSERT_TRUE(http_get(fx.server->port(), "/metrics", &status, &body, &error));
  EXPECT_EQ(status, 200);
  std::string prom_error;
  EXPECT_TRUE(is_valid_prometheus(body, &prom_error)) << prom_error;
  EXPECT_NE(body.find("rloop_daemon_ring_pushed_total"), std::string::npos);
  EXPECT_NE(body.find("rloop_daemon_epoch_latency_ns_quantiles"),
            std::string::npos);
  EXPECT_NE(body.find("rloop_build_info"), std::string::npos);
  EXPECT_NE(body.find("rloop_daemon_uptime_seconds"), std::string::npos);
  EXPECT_NE(body.find("rloop_http_requests_total"), std::string::npos);

  // /loops: strict JSON with the drain-time suspect table.
  ASSERT_TRUE(http_get(fx.server->port(), "/loops", &status, &body, &error));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(is_valid_json(body)) << body;
  EXPECT_NE(body.find("\"entries\""), std::string::npos);

  fx.server->stop();
}

// The /events SSE stream delivers exactly the pinned golden alert lines
// (tests/golden/golden_streaming_alerts.txt), in order, to a subscriber that
// was connected before the daemon started.
TEST(ObservabilityIntegration, EventsStreamDeliversPinnedGoldenAlerts) {
  std::ifstream pin(golden_path("golden_streaming_alerts.txt"));
  ASSERT_TRUE(pin.good());
  std::vector<std::string> expected;
  for (std::string line; std::getline(pin, line);) {
    if (!line.empty()) expected.push_back(line);
  }
  ASSERT_FALSE(expected.empty());

  DaemonFixture fx;
  RawClient sse;
  ASSERT_TRUE(sse.connect_to(fx.server->port()));
  ASSERT_TRUE(sse.send_str("GET /events HTTP/1.1\r\nHost: a\r\n\r\n"));
  std::string acc;
  // Once the handshake comment arrives the subscription is registered, so
  // alerts raised from here on cannot be missed.
  ASSERT_TRUE(sse.read_until(": rloopd event stream", &acc, 5000));

  DaemonConfig config;
  Daemon d(config, std::make_unique<ReplaySource>(fx.trace, "golden", 0),
           [&](const core::LoopAlert& alert) {
             char line[160];
             std::snprintf(line, sizeof(line),
                           "[%9.3fs] LOOP suspected on %-18s ttl_delta=%d "
                           "replicas=%llu (stream began %.1f ms earlier)",
                           net::to_seconds(alert.raised_at),
                           alert.prefix24.to_string().c_str(),
                           alert.ttl_delta,
                           static_cast<unsigned long long>(alert.replicas),
                           net::to_millis(alert.raised_at - alert.first_seen));
             fx.hub.publish_event(line);
           },
           &fx.registry);
  d.attach_observability(&fx.hub);
  std::thread runner([&] { (void)d.run(); });
  runner.join();

  // Drain the stream: stop() closes the event hub and the connection, so
  // the client reads the remaining frames and then EOF.
  std::thread stopper([&] { fx.server->stop(); });
  acc += sse.read_to_eof(10000);
  stopper.join();

  std::vector<std::string> got;
  std::size_t pos = 0;
  while ((pos = acc.find("data: ", pos)) != std::string::npos) {
    pos += 6;
    const std::size_t eol = acc.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    got.push_back(acc.substr(pos, eol - pos));
  }
  EXPECT_EQ(got, expected);
}

// /readyz must flip to 503 when the governor degrades past widen_batching —
// proven by injecting overload through the daemon.governor.degrade failpoint
// while the daemon replays the golden trace paced.
TEST(ObservabilityIntegration, ReadyzFlipsUnderInjectedGovernorDegrade) {
#if !defined(RLOOP_FAILPOINTS)
  GTEST_SKIP() << "failpoint sites compiled out (-DRLOOP_FAILPOINTS=OFF)";
#else
  DaemonFixture fx;
  std::string arm_error;
  ASSERT_TRUE(util::FailpointRegistry::instance().arm(
      "daemon.governor.degrade", "trip", &arm_error))
      << arm_error;

  DaemonConfig config;
  config.governor_enabled = true;
  // Paced replay: the trace spans seconds of wall time, leaving the poll
  // loop below plenty of epochs to observe the degraded tier.
  Daemon d(config,
           std::make_unique<ReplaySource>(fx.trace, "golden", /*speed=*/4.0),
           nullptr, &fx.registry);
  d.attach_observability(&fx.hub);
  std::thread runner([&] { (void)d.run(); });

  bool saw_degraded = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    std::string body, error;
    if (http_get(fx.server->port(), "/readyz", &status, &body, &error) &&
        status == 503 && body.find("degraded") != std::string::npos) {
      saw_degraded = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  d.request_stop();
  runner.join();
  util::FailpointRegistry::instance().disarm_all();
  EXPECT_TRUE(saw_degraded) << "governor degrade never surfaced on /readyz";
  fx.server->stop();
#endif
}

}  // namespace
}  // namespace rloop::daemon
