#include "routing/lpm_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "util/random.h"

namespace rloop::routing {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(LpmTrie, EmptyLookupFails) {
  LpmTrie trie;
  EXPECT_FALSE(trie.lookup(Ipv4Addr(1, 2, 3, 4)).has_value());
  EXPECT_TRUE(trie.empty());
}

TEST(LpmTrie, DefaultRouteMatchesEverything) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr{0}, 0), 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 2, 3, 4)), 99u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(255, 0, 0, 1)), 99u);
}

TEST(LpmTrie, LongestPrefixWins) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix::of(Ipv4Addr(10, 1, 0, 0), 16), 2);
  trie.insert(Prefix::of(Ipv4Addr(10, 1, 2, 0), 24), 3);
  trie.insert(Prefix::of(Ipv4Addr(10, 1, 2, 3), 32), 4);

  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 9, 9, 9)), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 9, 9)), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 9)), 3u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 4u);
  EXPECT_FALSE(trie.lookup(Ipv4Addr(11, 0, 0, 0)).has_value());
}

TEST(LpmTrie, LookupEntryReportsMatchedPrefix) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix::of(Ipv4Addr(10, 1, 0, 0), 16), 2);
  const auto entry = trie.lookup_entry(Ipv4Addr(10, 1, 2, 3));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first, Prefix::of(Ipv4Addr(10, 1, 0, 0), 16));
  EXPECT_EQ(entry->second, 2u);
}

TEST(LpmTrie, InsertOverwrites) {
  LpmTrie trie;
  const auto p = Prefix::of(Ipv4Addr(10, 0, 0, 0), 8);
  trie.insert(p, 1);
  trie.insert(p, 7);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 1)), 7u);
}

TEST(LpmTrie, RemoveRestoresShorterMatch) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix::of(Ipv4Addr(10, 1, 0, 0), 16), 2);
  EXPECT_TRUE(trie.remove(Prefix::of(Ipv4Addr(10, 1, 0, 0), 16)));
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 1u);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(LpmTrie, RemoveMissingReturnsFalse) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  EXPECT_FALSE(trie.remove(Prefix::of(Ipv4Addr(10, 1, 0, 0), 16)));
  EXPECT_FALSE(trie.remove(Prefix::of(Ipv4Addr(11, 0, 0, 0), 8)));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(LpmTrie, FindExactIgnoresLpm) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  EXPECT_EQ(trie.find_exact(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8)), 1u);
  EXPECT_FALSE(
      trie.find_exact(Prefix::of(Ipv4Addr(10, 1, 0, 0), 16)).has_value());
}

TEST(LpmTrie, ClearEmptiesEverything) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix::of(Ipv4Addr(20, 0, 0, 0), 8), 2);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.lookup(Ipv4Addr(10, 0, 0, 1)).has_value());
}

TEST(LpmTrie, EntriesAreSorted) {
  LpmTrie trie;
  trie.insert(Prefix::of(Ipv4Addr(20, 0, 0, 0), 8), 3);
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 16), 2);
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, Prefix::of(Ipv4Addr(10, 0, 0, 0), 8));
  EXPECT_EQ(entries[1].first, Prefix::of(Ipv4Addr(10, 0, 0, 0), 16));
  EXPECT_EQ(entries[2].first, Prefix::of(Ipv4Addr(20, 0, 0, 0), 8));
}

// Property test: the trie agrees with a brute-force reference on random
// inserts/removes/lookups.
class LpmRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmRandomized, AgreesWithBruteForce) {
  util::Rng rng(GetParam());
  LpmTrie trie;
  std::map<Prefix, std::uint32_t> reference;

  auto brute_force = [&](Ipv4Addr addr) -> std::optional<std::uint32_t> {
    std::optional<std::uint32_t> best;
    int best_len = -1;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) && prefix.len > best_len) {
        best = value;
        best_len = prefix.len;
      }
    }
    return best;
  };

  for (int op = 0; op < 600; ++op) {
    const auto addr =
        Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    const auto prefix = Prefix::of(addr, len);
    const double action = rng.uniform();
    if (action < 0.55) {
      const auto value = static_cast<std::uint32_t>(rng.next_u64());
      trie.insert(prefix, value);
      reference[prefix] = value;
    } else if (action < 0.75) {
      EXPECT_EQ(trie.remove(prefix), reference.erase(prefix) > 0);
    }
    const auto probe = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    ASSERT_EQ(trie.lookup(probe), brute_force(probe)) << "op " << op;
    ASSERT_EQ(trie.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmRandomized,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace rloop::routing
