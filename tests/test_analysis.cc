#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/cdf.h"
#include "analysis/csv.h"
#include "analysis/histogram.h"
#include "analysis/stats.h"
#include "analysis/table.h"

namespace rloop::analysis {
namespace {

TEST(Histogram, BinsAndFractions) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.0);  // bin 0: [0,2)
  h.add(5.0);  // bin 2
  h.add(9.99);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightsAndValidation) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 10);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_THROW(Histogram(1.0, 1.0, 2), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(DiscreteHistogram, CountsAndMode) {
  DiscreteHistogram h;
  h.add(2, 10);
  h.add(3, 4);
  h.add(8);
  EXPECT_EQ(h.total(), 15u);
  EXPECT_EQ(h.count(2), 10u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_EQ(h.mode(), 2);
  EXPECT_NEAR(h.fraction(3), 4.0 / 15.0, 1e-12);
  DiscreteHistogram empty;
  EXPECT_THROW(empty.mode(), std::logic_error);
}

TEST(CategoricalCounter, MultiCategorySamples) {
  CategoricalCounter c;
  c.add_sample();
  c.add("TCP");
  c.add("SYN");
  c.add_sample();
  c.add("UDP");
  EXPECT_EQ(c.total(), 2u);
  EXPECT_DOUBLE_EQ(c.fraction("TCP"), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction("SYN"), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction("UDP"), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction("ICMP"), 0.0);
}

TEST(EmpiricalCdf, QuantilesNearestRank) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
}

TEST(EmpiricalCdf, FractionAtOrBelow) {
  EmpiricalCdf cdf;
  cdf.add(1);
  cdf.add(2);
  cdf.add(2);
  cdf.add(10);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10), 1.0);
}

TEST(EmpiricalCdf, PointsDownsampleAndEndAtOne) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(i);
  const auto points = cdf.points(10);
  ASSERT_FALSE(points.empty());
  EXPECT_LE(points.size(), 12u);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  EXPECT_DOUBLE_EQ(points.back().first, 999.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].first, points[i].first);
    EXPECT_LE(points[i - 1].second, points[i].second);
  }
}

TEST(EmpiricalCdf, ErrorsOnEmptyAndBadQuantile) {
  EmpiricalCdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  cdf.add(1.0);
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(5), 1.0);
}

TEST(OnlineStats, WelfordMatchesClosedForm) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, DegenerateCases) {
  OnlineStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RateSeries, BinsEvents) {
  RateSeries series(60.0);
  series.add(5.0);
  series.add(59.0, 2);
  series.add(61.0);
  series.add(200.0);
  ASSERT_EQ(series.bins().size(), 4u);
  EXPECT_EQ(series.bins()[0], 3u);
  EXPECT_EQ(series.bins()[1], 1u);
  EXPECT_EQ(series.bins()[2], 0u);
  EXPECT_EQ(series.bins()[3], 1u);
  EXPECT_EQ(series.max_bin(), 3u);
  EXPECT_EQ(series.total(), 5u);
  EXPECT_THROW(RateSeries(0.0), std::invalid_argument);
}

TEST(TextTable, AlignedOutput) {
  TextTable table({"Name", "Count"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("Name   Count"), std::string::npos);
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
  EXPECT_NE(text.find("b      12345"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "many", "cells"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_si(1500.0), "1.5k");
  EXPECT_EQ(format_si(2'500'000.0), "2.5M");
  EXPECT_EQ(format_si(3'200'000'000.0), "3.2G");
  EXPECT_EQ(format_si(12.0), "12.0");
}

TEST(CsvWriter, WritesEscapedRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "rloop_csv_test.csv").string();
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "with,comma"});
    csv.add_row({"quote\"inside", "multi\nline"});
    EXPECT_THROW(csv.add_row({"one"}), std::invalid_argument);
    csv.close();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto content = ss.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(content.find("\"quote\"\"inside\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace rloop::analysis
