#include "correlate/correlate.h"

#include <gtest/gtest.h>

#include "core/loop_detector.h"
#include "scenarios/backbone.h"

namespace rloop::correlate {
namespace {

using net::Prefix;
using sim::ControlEvent;

core::RoutingLoop loop_at(const Prefix& p, net::TimeNs start, net::TimeNs end) {
  core::RoutingLoop loop;
  loop.prefix24 = p;
  loop.start = start;
  loop.end = end;
  return loop;
}

ControlEvent event(ControlEvent::Kind kind, net::TimeNs t,
                   const Prefix& prefix = {}, routing::LinkId link = -1) {
  ControlEvent ev;
  ev.kind = kind;
  ev.time = t;
  ev.prefix = prefix;
  ev.link = link;
  return ev;
}

const Prefix kPrefix = *Prefix::parse("203.0.113.0/24");
const Prefix kOther = *Prefix::parse("198.18.5.0/24");

TEST(Correlate, MatchesBgpWithdrawalOnSamePrefix) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 10 * net::kSecond, 15 * net::kSecond)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::bgp_withdraw, 8 * net::kSecond, kPrefix)};
  const auto explanations = explain_loops(loops, log);
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0].cause, Cause::bgp_withdrawal);
  EXPECT_EQ(explanations[0].onset_latency, 2 * net::kSecond);
  EXPECT_EQ(explanations[0].event_prefix, kPrefix);
}

TEST(Correlate, PrefixMismatchFallsThroughToIgp) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 10 * net::kSecond, 15 * net::kSecond)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::bgp_withdraw, 9 * net::kSecond, kOther),
      event(ControlEvent::Kind::link_down, 8 * net::kSecond, {}, 3)};
  const auto explanations = explain_loops(loops, log);
  EXPECT_EQ(explanations[0].cause, Cause::igp_link_down);
  EXPECT_EQ(explanations[0].event_link, 3);
}

TEST(Correlate, BgpBeatsIgpWhenBothPlausible) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 10 * net::kSecond, 15 * net::kSecond)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::link_down, 9 * net::kSecond, {}, 1),
      event(ControlEvent::Kind::bgp_withdraw, 5 * net::kSecond, kPrefix)};
  EXPECT_EQ(explain_loops(loops, log)[0].cause, Cause::bgp_withdrawal);
}

TEST(Correlate, LagWindowsEnforced) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 10 * net::kMinute, 11 * net::kMinute)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::bgp_withdraw, net::kSecond, kPrefix),
      event(ControlEvent::Kind::link_down, net::kSecond, {}, 1)};
  EXPECT_EQ(explain_loops(loops, log)[0].cause, Cause::unexplained);
}

TEST(Correlate, EventsAfterLoopStartIgnored) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 10 * net::kSecond, 30 * net::kSecond)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::bgp_withdraw, 12 * net::kSecond, kPrefix)};
  EXPECT_EQ(explain_loops(loops, log)[0].cause, Cause::unexplained);
}

TEST(Correlate, MisconfigurationExplainsUntilCleared) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 20 * net::kMinute, 25 * net::kMinute)};
  std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::misconfig_set, net::kMinute, kPrefix)};
  EXPECT_EQ(explain_loops(loops, log)[0].cause, Cause::misconfiguration);

  log.push_back(
      event(ControlEvent::Kind::misconfig_clear, 10 * net::kMinute, kPrefix));
  EXPECT_EQ(explain_loops(loops, log)[0].cause, Cause::unexplained);
}

TEST(Correlate, LatestPrecedingEventWins) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 100 * net::kSecond, 110 * net::kSecond)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::bgp_withdraw, 20 * net::kSecond, kPrefix),
      event(ControlEvent::Kind::bgp_reannounce, 95 * net::kSecond, kPrefix)};
  const auto explanations = explain_loops(loops, log);
  EXPECT_EQ(explanations[0].cause, Cause::bgp_reannounce);
  EXPECT_EQ(explanations[0].onset_latency, 5 * net::kSecond);
}

TEST(Correlate, SummaryCountsAndLatency) {
  const std::vector<core::RoutingLoop> loops = {
      loop_at(kPrefix, 10 * net::kSecond, 12 * net::kSecond),
      loop_at(kOther, 20 * net::kSecond, 22 * net::kSecond),
      loop_at(*Prefix::parse("10.1.1.0/24"), 500 * net::kSecond,
              501 * net::kSecond)};
  const std::vector<ControlEvent> log = {
      event(ControlEvent::Kind::bgp_withdraw, 8 * net::kSecond, kPrefix),
      event(ControlEvent::Kind::link_down, 16 * net::kSecond, {}, 2)};
  const auto summary = summarize(explain_loops(loops, log));
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.by_cause[static_cast<int>(Cause::bgp_withdrawal)], 1u);
  EXPECT_EQ(summary.by_cause[static_cast<int>(Cause::igp_link_down)], 1u);
  EXPECT_EQ(summary.by_cause[static_cast<int>(Cause::unexplained)], 1u);
  EXPECT_NEAR(summary.explained_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(summary.mean_onset_latency_s, 3.0, 1e-9);  // (2 + 4) / 2
}

// Integration: every loop detected in a simulated scenario is explained by
// the simulator's own control log.
TEST(Correlate, ExplainsSimulatedLoops) {
  auto spec = scenarios::backbone_spec(1);
  spec.duration = 90 * net::kSecond;
  spec.igp_events = 2;
  spec.bgp_events = 6;
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);

  const auto result = core::detect_loops(run->trace());
  ASSERT_GT(result.loops.size(), 0u);
  const auto explanations =
      explain_loops(result.loops, run->network->control_log());
  const auto summary = summarize(explanations);
  EXPECT_DOUBLE_EQ(summary.explained_fraction(), 1.0);
  // Tap-visible loops in this topology are BGP-driven.
  EXPECT_GT(summary.by_cause[static_cast<int>(Cause::bgp_withdrawal)] +
                summary.by_cause[static_cast<int>(Cause::bgp_reannounce)],
            0u);
}

}  // namespace
}  // namespace rloop::correlate
