// Test helper: a strict Prometheus text-exposition-format validator.
//
// The repo's /metrics output is hand-rendered (no client library), so tests
// hold it to the format spec with this equally dependency-free parser. It is
// deliberately stricter than what a real Prometheus server tolerates —
// anything it rejects would at best scrape with warnings:
//
//   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
//     [a-zA-Z_][a-zA-Z0-9_]* (no reserved __ prefix), label values use only
//     the \\ \" \n escapes;
//   * every family with samples has # HELP and # TYPE, each exactly once,
//     both before the first sample, with a known type;
//   * a family's samples are contiguous (no interleaving families);
//   * histogram families expose only _bucket/_sum/_count series; buckets
//     carry a parseable `le`, are cumulative in ascending `le` order, end at
//     le="+Inf", and the +Inf bucket equals _count — per label set;
//   * summary families expose quantile series (quantile in [0,1]) plus
//     _sum/_count;
//   * counter and gauge sample names equal the family name exactly, and
//     counter values are non-negative;
//   * sample values parse as Go floats (incl. +Inf/-Inf/NaN), no
//     timestamps (the exporter never emits them), and the exposition ends
//     with a newline.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rloop::testing {

struct PromSample {
  std::string name;  // full series name (may carry _bucket/_sum/_count)
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

struct PromFamily {
  std::string type;  // counter | gauge | histogram | summary | untyped
  std::string help;
  bool has_help = false;
  bool has_type = false;
  std::vector<PromSample> samples;
};

namespace prom_detail {

inline bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' ||
        s[0] == ':')) {
    return false;
  }
  for (const char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

inline bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  if (s.size() >= 2 && s[0] == '_' && s[1] == '_') return false;  // reserved
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (const char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

inline bool parse_value(std::string_view token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *out = std::nan("");
    return true;
  }
  if (token.empty()) return false;
  const std::string copy(token);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

// "name_bucket" -> "name" when `suffix` is "_bucket"; empty if no match.
inline std::string_view strip_suffix(std::string_view name,
                                     std::string_view suffix) {
  if (name.size() > suffix.size() &&
      name.substr(name.size() - suffix.size()) == suffix) {
    return name.substr(0, name.size() - suffix.size());
  }
  return {};
}

struct Parser {
  std::string_view text;
  std::map<std::string, PromFamily>* families;
  std::string error;
  int line_no = 0;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = "line " + std::to_string(line_no) + ": " + message;
    }
    return false;
  }

  // The family a series name belongs to, honoring declared histogram /
  // summary types for the _bucket/_sum/_count suffixes.
  std::string family_of(std::string_view series) {
    for (const auto suffix : {"_bucket", "_sum", "_count"}) {
      const std::string_view base = strip_suffix(series, suffix);
      if (base.empty()) continue;
      auto it = families->find(std::string(base));
      if (it == families->end()) continue;
      if (it->second.type == "histogram" || it->second.type == "summary") {
        return std::string(base);
      }
    }
    return std::string(series);
  }

  bool parse_sample(std::string_view line) {
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ' &&
           line[pos] != '\t') {
      ++pos;
    }
    PromSample sample;
    sample.name = std::string(line.substr(0, pos));
    if (!valid_metric_name(sample.name)) {
      return fail("bad metric name '" + sample.name + "'");
    }
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      if (pos < line.size() && line[pos] == '}') {
        // strict: no empty label set rendered as {}
        return fail("empty label braces");
      }
      for (;;) {
        std::size_t eq = pos;
        while (eq < line.size() && line[eq] != '=') ++eq;
        if (eq >= line.size()) return fail("label without '='");
        const std::string label_name(line.substr(pos, eq - pos));
        if (!valid_label_name(label_name)) {
          return fail("bad label name '" + label_name + "'");
        }
        pos = eq + 1;
        if (pos >= line.size() || line[pos] != '"') {
          return fail("label value must be quoted");
        }
        ++pos;
        std::string value;
        bool closed = false;
        while (pos < line.size()) {
          const char c = line[pos];
          if (c == '"') {
            closed = true;
            ++pos;
            break;
          }
          if (c == '\\') {
            ++pos;
            if (pos >= line.size()) return fail("truncated escape");
            const char e = line[pos];
            if (e == '\\') value += '\\';
            else if (e == '"') value += '"';
            else if (e == 'n') value += '\n';
            else return fail("bad escape in label value");
            ++pos;
            continue;
          }
          if (c == '\n') return fail("raw newline in label value");
          value += c;
          ++pos;
        }
        if (!closed) return fail("unterminated label value");
        for (const auto& existing : sample.labels) {
          if (existing.first == label_name) {
            return fail("duplicate label '" + label_name + "'");
          }
        }
        sample.labels.emplace_back(label_name, std::move(value));
        if (pos < line.size() && line[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < line.size() && line[pos] == '}') {
          ++pos;
          break;
        }
        return fail("expected ',' or '}' after label");
      }
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail("expected single space before value");
    }
    ++pos;
    const std::string_view rest = line.substr(pos);
    if (rest.find(' ') != std::string_view::npos ||
        rest.find('\t') != std::string_view::npos) {
      return fail("unexpected content after value (timestamps not allowed)");
    }
    if (!parse_value(rest, &sample.value)) {
      return fail("unparseable value '" + std::string(rest) + "'");
    }

    const std::string family_name = family_of(sample.name);
    auto& family = (*families)[family_name];
    family.samples.push_back(std::move(sample));
    return true;
  }

  // "# HELP name text" / "# TYPE name type"
  bool parse_comment(std::string_view line) {
    if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
      return true;  // plain comment, ignored
    }
    const bool is_help = line.rfind("# HELP ", 0) == 0;
    std::string_view rest = line.substr(7);
    const std::size_t space = rest.find(' ');
    const std::string name(space == std::string_view::npos
                               ? rest
                               : rest.substr(0, space));
    if (!valid_metric_name(name)) {
      return fail("bad metric name in comment '" + name + "'");
    }
    auto& family = (*families)[name];
    if (!family.samples.empty()) {
      return fail("# " + std::string(is_help ? "HELP" : "TYPE") + " for '" +
                  name + "' after its samples");
    }
    if (is_help) {
      if (family.has_help) return fail("duplicate # HELP for '" + name + "'");
      family.has_help = true;
      family.help = space == std::string_view::npos
                        ? ""
                        : std::string(rest.substr(space + 1));
      if (family.help.empty()) return fail("empty help text for '" + name + "'");
    } else {
      if (family.has_type) return fail("duplicate # TYPE for '" + name + "'");
      family.has_type = true;
      const std::string type(space == std::string_view::npos
                                 ? ""
                                 : rest.substr(space + 1));
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return fail("unknown type '" + type + "' for '" + name + "'");
      }
      family.type = type;
    }
    return true;
  }

};

}  // namespace prom_detail

// Parses and validates `text` as Prometheus text exposition format. On
// success fills `*families` (keyed by family name). On failure returns false
// with a description in `*error`.
inline bool parse_prometheus(std::string_view text,
                             std::map<std::string, PromFamily>* families,
                             std::string* error = nullptr) {
  families->clear();
  prom_detail::Parser parser{text, families};

  // Pass 1: HELP/TYPE declarations and raw samples, with per-line syntax.
  // Contiguity is checked inline via the order samples arrive.
  if (!text.empty() && text.back() != '\n') {
    if (error) *error = "exposition must end with a newline";
    return false;
  }
  std::size_t start = 0;
  std::string current;
  std::vector<std::string> closed;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    ++parser.line_no;
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (!parser.parse_comment(line)) {
        if (error) *error = parser.error;
        return false;
      }
      continue;
    }
    if (!parser.parse_sample(line)) {
      if (error) *error = parser.error;
      return false;
    }
    // The sample just landed in family_of(name of the last sample). Re-derive
    // it for the contiguity check.
    std::string_view name = line.substr(0, line.find_first_of("{ \t"));
    const std::string family = parser.family_of(name);
    if (family != current) {
      for (const auto& prev : closed) {
        if (prev == family) {
          if (error) {
            *error = "line " + std::to_string(parser.line_no) +
                     ": samples for '" + family + "' are not contiguous";
          }
          return false;
        }
      }
      if (!current.empty()) closed.push_back(current);
      current = family;
    }
  }

  // Pass 2: per-family semantic checks.
  for (const auto& [name, family] : *families) {
    auto semantic_fail = [&](const std::string& message) {
      if (error) *error = "family '" + name + "': " + message;
      return false;
    };
    if (family.samples.empty()) {
      // HELP/TYPE with no samples is legal exposition; nothing to check.
      continue;
    }
    if (!family.has_help) return semantic_fail("missing # HELP");
    if (!family.has_type) return semantic_fail("missing # TYPE");

    if (family.type == "counter" || family.type == "gauge" ||
        family.type == "untyped") {
      for (const auto& sample : family.samples) {
        if (sample.name != name) {
          return semantic_fail("sample '" + sample.name +
                               "' does not match family name");
        }
        if (family.type == "counter" && sample.value < 0) {
          return semantic_fail("negative counter value");
        }
      }
      continue;
    }

    if (family.type == "summary") {
      bool saw_sum = false;
      bool saw_count = false;
      for (const auto& sample : family.samples) {
        if (sample.name == name + "_sum") {
          saw_sum = true;
        } else if (sample.name == name + "_count") {
          saw_count = true;
        } else if (sample.name == name) {
          double q = -1;
          for (const auto& [k, v] : sample.labels) {
            if (k == "quantile" && !prom_detail::parse_value(v, &q)) {
              return semantic_fail("unparseable quantile '" + v + "'");
            }
          }
          if (!(q >= 0.0 && q <= 1.0)) {
            return semantic_fail("quantile label missing or outside [0,1]");
          }
        } else {
          return semantic_fail("unexpected series '" + sample.name + "'");
        }
      }
      if (!saw_sum || !saw_count) {
        return semantic_fail("summary missing _sum or _count");
      }
      continue;
    }

    // Histogram: group by the non-`le` label set.
    struct Group {
      std::vector<std::pair<double, double>> buckets;  // (le, value)
      bool has_sum = false;
      bool has_count = false;
      double count = 0;
    };
    std::map<std::string, Group> groups;
    auto group_key = [](const PromSample& sample) {
      std::string key;
      for (const auto& [k, v] : sample.labels) {
        if (k == "le") continue;
        key += k + "=" + v + ",";
      }
      return key;
    };
    for (const auto& sample : family.samples) {
      if (sample.name == name + "_bucket") {
        double le = 0;
        bool found = false;
        for (const auto& [k, v] : sample.labels) {
          if (k != "le") continue;
          found = true;
          if (!prom_detail::parse_value(v, &le)) {
            return semantic_fail("unparseable le '" + v + "'");
          }
        }
        if (!found) return semantic_fail("_bucket without le label");
        groups[group_key(sample)].buckets.emplace_back(le, sample.value);
      } else if (sample.name == name + "_sum") {
        groups[group_key(sample)].has_sum = true;
      } else if (sample.name == name + "_count") {
        auto& group = groups[group_key(sample)];
        group.has_count = true;
        group.count = sample.value;
      } else {
        return semantic_fail("unexpected series '" + sample.name + "'");
      }
    }
    for (const auto& [key, group] : groups) {
      if (!group.has_sum || !group.has_count) {
        return semantic_fail("histogram missing _sum or _count");
      }
      if (group.buckets.empty()) {
        return semantic_fail("histogram without buckets");
      }
      double prev_le = -std::numeric_limits<double>::infinity();
      double prev_value = 0;
      for (const auto& [le, value] : group.buckets) {
        if (!(le > prev_le)) {
          return semantic_fail("bucket le values not strictly increasing");
        }
        if (value + 1e-9 < prev_value) {
          return semantic_fail("bucket counts not cumulative");
        }
        prev_le = le;
        prev_value = value;
      }
      if (!std::isinf(group.buckets.back().first)) {
        return semantic_fail("last bucket is not le=\"+Inf\"");
      }
      if (group.buckets.back().second != group.count) {
        return semantic_fail("+Inf bucket does not equal _count");
      }
    }
  }
  return true;
}

// Convenience wrapper when only pass/fail is needed.
inline bool is_valid_prometheus(std::string_view text,
                                std::string* error = nullptr) {
  std::map<std::string, PromFamily> families;
  return parse_prometheus(text, &families, error);
}

}  // namespace rloop::testing
