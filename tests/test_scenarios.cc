#include "scenarios/backbone.h"

#include <gtest/gtest.h>

#include <set>

namespace rloop::scenarios {
namespace {

TEST(BackboneSpec, FourDistinctScenarios) {
  std::set<std::uint64_t> seeds;
  for (int k = 1; k <= 4; ++k) {
    const auto spec = backbone_spec(k);
    EXPECT_EQ(spec.index, k);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.duration, 0);
    EXPECT_GT(spec.flows_per_second, 0.0);
    seeds.insert(spec.seed);
  }
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_THROW(backbone_spec(0), std::invalid_argument);
  EXPECT_THROW(backbone_spec(5), std::invalid_argument);
}

TEST(BackboneTopology, WellFormed) {
  for (int k = 1; k <= 4; ++k) {
    const auto spec = backbone_spec(k);
    BackboneNodes nodes{};
    const auto topo = make_backbone_topology(spec, nodes);
    ASSERT_GE(topo.node_count(), 14u);
    ASSERT_GE(nodes.tap_link, 0);
    // Tap endpoints are X and either Y or the transit node M.
    const auto& tap = topo.link(nodes.tap_link);
    EXPECT_TRUE(tap.a == nodes.x || tap.b == nodes.x);
    EXPECT_FALSE(nodes.flap_candidates.empty());
    // The tapped link itself never flaps (the monitor must stay live).
    for (const auto link : nodes.flap_candidates) {
      EXPECT_NE(link, nodes.tap_link);
    }
    // Every node reaches every other (connected topology).
    const auto spf = routing::compute_spf(topo, nodes.i0);
    for (const auto& node : topo.nodes()) {
      if (node.id != nodes.i0) EXPECT_TRUE(spf.reachable(node.id));
    }
    // Transit chain only in scenario 4.
    EXPECT_EQ(nodes.m >= 0, spec.transit_chain);
  }
}

TEST(BackboneTopology, TransitChainTieBreaks) {
  // The B4 construction relies on specific equal-cost tie-breaks: down
  // traffic crosses X->M->Y, while Y's route up to X uses the direct link.
  const auto spec = backbone_spec(4);
  BackboneNodes nodes{};
  const auto topo = make_backbone_topology(spec, nodes);

  const auto from_x = routing::compute_spf(topo, nodes.x);
  EXPECT_EQ(from_x.next_hop_link[static_cast<std::size_t>(nodes.e1)],
            nodes.tap_link);  // down via M

  const auto from_y = routing::compute_spf(topo, nodes.y);
  const auto direct = topo.find_link(nodes.x, nodes.y);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(from_y.next_hop_link[static_cast<std::size_t>(nodes.x)], *direct);
}

TEST(BackboneBuild, InvariantsHold) {
  auto spec = backbone_spec(3);
  spec.duration = 5 * net::kSecond;  // keep the test fast
  spec.igp_events = 1;
  spec.bgp_events = 1;
  const auto run = build_backbone(spec);

  EXPECT_FALSE(run->withdrawable.empty());
  EXPECT_EQ(run->plan.link_events.size(), 1u);
  EXPECT_GE(run->plan.bgp_events.size(), 1u);
  // Withdrawable prefixes all have a fallback (checked indirectly: they came
  // from the 70% two-egress population).
  EXPECT_LT(run->withdrawable.size(), run->destinations->size());
  EXPECT_EQ(run->trace().size(), 0u);  // nothing ran yet
}

TEST(BackboneRun, ShortRunProducesTraceAndTraffic) {
  auto spec = backbone_spec(1);
  spec.duration = 10 * net::kSecond;
  spec.igp_events = 1;
  spec.bgp_events = 2;
  auto run = build_backbone(spec);
  execute(*run);

  EXPECT_GT(run->workload->flows_generated(), 100u);
  EXPECT_GT(run->trace().size(), 1000u);
  const auto& stats = run->network->stats();
  EXPECT_GT(stats.delivered, 0u);
  // Closed-loop TCP injects at most the offered load (SYN retries can add a
  // few packets; dead SYNs suppress many more), plus router-generated ICMP
  // and failure pings.
  EXPECT_GT(stats.injected, run->workload->packets_generated() / 2);
}

TEST(BackboneRun, DeterministicAcrossRuns) {
  auto spec = backbone_spec(2);
  spec.duration = 6 * net::kSecond;
  spec.igp_events = 1;
  spec.bgp_events = 2;

  auto run1 = build_backbone(spec);
  execute(*run1);
  auto run2 = build_backbone(spec);
  execute(*run2);

  ASSERT_EQ(run1->trace().size(), run2->trace().size());
  EXPECT_EQ(run1->network->stats().delivered, run2->network->stats().delivered);
  EXPECT_EQ(run1->network->stats().loop_crossings,
            run2->network->stats().loop_crossings);
  // Byte-identical traces.
  for (std::size_t i = 0; i < run1->trace().size(); i += 997) {
    EXPECT_EQ(run1->trace()[i].ts, run2->trace()[i].ts);
    EXPECT_EQ(run1->trace()[i].data, run2->trace()[i].data);
  }
}

TEST(BackboneRun, MostTrafficCrossesTheTap) {
  auto spec = backbone_spec(1);
  spec.duration = 10 * net::kSecond;
  spec.igp_events = 0;
  spec.bgp_events = 0;
  auto run = build_backbone(spec);
  execute(*run);
  // ~70-90 % of destinations sit behind side B; the tap must carry the bulk
  // of injected traffic for the study to be meaningful.
  const double ratio = static_cast<double>(run->trace().size()) /
                       static_cast<double>(run->workload->packets_generated());
  EXPECT_GT(ratio, 0.6);
}

}  // namespace
}  // namespace rloop::scenarios
