// Differential proof for the SIMD kernels (util/simd.h).
//
// Every AVX2 kernel promises bit-identical output to its scalar twin for
// every input — remainder tails, unaligned starts, degenerate lengths. These
// tests diff the three spellings (scalar / avx2 / dispatcher) against each
// other and against independently written reference loops, on dense
// synthetic patterns and on fuzz-seeded columns, across every length around
// the vector-width boundaries and across unaligned base offsets.
//
// When the machine cannot execute AVX2 (and the build is not forced-scalar,
// where the _avx2 symbol is the scalar body anyway), the _avx2 calls are
// skipped; the dispatcher-vs-scalar diffs still run, proving the fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/parallel.h"
#include "util/simd.h"

namespace {

using namespace rloop::util;

// True when calling the *_avx2 spelling is safe: either the CPU executes
// AVX2, or the build compiled those symbols down to the scalar bodies.
bool avx2_callable() {
#ifdef RLOOP_NO_SIMD
  return true;
#else
  return simd::avx2_available();
#endif
}

// Lengths straddling every interesting boundary for 4-, 8- and 32-lane
// kernels: empty, sub-vector, exact multiples, and off-by-one tails.
const std::vector<std::size_t>& boundary_lengths() {
  static const std::vector<std::size_t> lengths = {
      0,  1,  2,  3,  4,  5,  7,  8,  9,  15, 16, 17,
      31, 32, 33, 34, 63, 64, 65, 67, 70, 128, 1000, 4097};
  return lengths;
}

TEST(Simd, BackendReported) {
  const std::string backend = simd::active_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "scalar") << backend;
#ifdef RLOOP_NO_SIMD
  EXPECT_EQ(backend, "scalar");
  EXPECT_FALSE(simd::avx2_available());
#endif
}

TEST(Simd, MaskLo8ZeroDifferential) {
  std::mt19937_64 rng(0x5eed0001);
  for (const std::size_t n : boundary_lengths()) {
    for (std::size_t offset = 0; offset < 4; ++offset) {
      // Over-allocate so base + offset keeps n valid elements: unaligned
      // starts exercise the kernels' unaligned loads.
      std::vector<std::uint32_t> in(n + offset + 1);
      for (auto& v : in) v = static_cast<std::uint32_t>(rng());
      const std::uint32_t* base = in.data() + offset;

      std::vector<std::uint32_t> ref(n), scalar(n), avx2(n), dispatch(n);
      for (std::size_t i = 0; i < n; ++i) ref[i] = base[i] & 0xFFFFFF00u;
      simd::mask_lo8_zero_scalar(base, scalar.data(), n);
      simd::mask_lo8_zero(base, dispatch.data(), n);
      EXPECT_EQ(scalar, ref) << "n=" << n << " offset=" << offset;
      EXPECT_EQ(dispatch, ref) << "n=" << n << " offset=" << offset;
      if (avx2_callable()) {
        simd::mask_lo8_zero_avx2(base, avx2.data(), n);
        EXPECT_EQ(avx2, ref) << "n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST(Simd, MaskLo8ZeroInPlaceAlias) {
  // The contract allows in == out; the pipeline columnizer uses it.
  std::vector<std::uint32_t> buf(67);
  std::mt19937_64 rng(0x5eed0002);
  for (auto& v : buf) v = static_cast<std::uint32_t>(rng());
  std::vector<std::uint32_t> ref(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) ref[i] = buf[i] & 0xFFFFFF00u;
  simd::mask_lo8_zero(buf.data(), buf.data(), buf.size());
  EXPECT_EQ(buf, ref);
}

TEST(Simd, Mix64MaskDifferentialAndShardAgreement) {
  std::mt19937_64 rng(0x5eed0003);
  for (const std::size_t n : boundary_lengths()) {
    for (const unsigned num_shards : {1u, 2u, 4u, 16u, 1024u}) {
      const std::uint64_t mask = num_shards - 1;
      std::vector<std::uint64_t> in(n + 1);
      for (auto& v : in) v = rng();
      // Structured low bits too: FNV output is not uniform, and the mix
      // must still spread it (that is why mix64 exists).
      for (std::size_t i = 0; i + 1 < in.size(); i += 2) in[i] &= 0xFFFFu;

      std::vector<std::uint32_t> scalar(n), avx2(n), dispatch(n);
      simd::mix64_mask_scalar(in.data(), scalar.data(), n, mask);
      simd::mix64_mask(in.data(), dispatch.data(), n, mask);
      for (std::size_t i = 0; i < n; ++i) {
        // The kernel must agree lane-for-lane with the pipeline's scalar
        // shard assignment (power-of-two counts: % == &).
        ASSERT_EQ(scalar[i],
                  rloop::core::shard_of_key_hash(in[i], num_shards))
            << "n=" << n << " i=" << i << " shards=" << num_shards;
      }
      EXPECT_EQ(dispatch, scalar) << "n=" << n << " shards=" << num_shards;
      if (avx2_callable()) {
        simd::mix64_mask_avx2(in.data(), avx2.data(), n, mask);
        EXPECT_EQ(avx2, scalar) << "n=" << n << " shards=" << num_shards;
      }
      // Unaligned start.
      if (n > 0) {
        std::vector<std::uint32_t> s2(n - 1), d2(n - 1);
        simd::mix64_mask_scalar(in.data() + 1, s2.data(), n - 1, mask);
        simd::mix64_mask(in.data() + 1, d2.data(), n - 1, mask);
        EXPECT_EQ(d2, s2) << "n=" << n << " shards=" << num_shards;
      }
    }
  }
}

TEST(Simd, MismatchU64Positions) {
  std::mt19937_64 rng(0x5eed0004);
  for (const std::size_t n : boundary_lengths()) {
    std::vector<std::uint64_t> a(n);
    for (auto& v : a) v = rng();
    std::vector<std::uint64_t> b = a;

    // Equal ranges: all three spellings return n.
    EXPECT_EQ(simd::mismatch_u64_scalar(a.data(), b.data(), n), n);
    EXPECT_EQ(simd::mismatch_u64(a.data(), b.data(), n), n);
    if (avx2_callable()) {
      EXPECT_EQ(simd::mismatch_u64_avx2(a.data(), b.data(), n), n);
    }

    // A single flipped element at every position: first, last, and each
    // lane within a vector.
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (n > 70 && pos > 40 && pos != n - 1) continue;  // sparse for big n
      b[pos] ^= 1;
      EXPECT_EQ(simd::mismatch_u64_scalar(a.data(), b.data(), n), pos);
      EXPECT_EQ(simd::mismatch_u64(a.data(), b.data(), n), pos);
      if (avx2_callable()) {
        EXPECT_EQ(simd::mismatch_u64_avx2(a.data(), b.data(), n), pos);
      }
      b[pos] = a[pos];
    }
  }
}

TEST(Simd, TtlDeltaHistDifferential) {
  std::mt19937_64 rng(0x5eed0005);
  for (const std::size_t n : boundary_lengths()) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      std::vector<std::uint8_t> ttl(n + 2);
      for (std::size_t i = 0; i < ttl.size(); ++i) {
        switch (pattern) {
          case 0:  // random — deltas of every sign and size
            ttl[i] = static_cast<std::uint8_t>(rng());
            break;
          case 1:  // strictly descending with wraps — dense positive deltas
            ttl[i] = static_cast<std::uint8_t>(255 - (i * 3) % 256);
            break;
          default:  // constant — no deltas at all
            ttl[i] = 64;
        }
      }
      const std::uint8_t* base = ttl.data() + 1;  // unaligned start

      std::vector<std::uint32_t> ref(256, 0), scalar(256, 0), avx2(256, 0),
          dispatch(256, 0);
      for (std::size_t i = 1; i < n; ++i) {
        if (base[i - 1] > base[i]) ++ref[base[i - 1] - base[i]];
      }
      simd::ttl_delta_hist_scalar(base, n, scalar.data());
      simd::ttl_delta_hist(base, n, dispatch.data());
      EXPECT_EQ(scalar, ref) << "n=" << n << " pattern=" << pattern;
      EXPECT_EQ(dispatch, ref) << "n=" << n << " pattern=" << pattern;
      if (avx2_callable()) {
        simd::ttl_delta_hist_avx2(base, n, avx2.data());
        EXPECT_EQ(avx2, ref) << "n=" << n << " pattern=" << pattern;
      }
    }
  }
}

TEST(Simd, TtlDeltaHistAccumulates) {
  // The contract is accumulate-into, not clear-then-fill: the dominant-delta
  // scan calls it once per tile over one shared counts array.
  const std::vector<std::uint8_t> ttl = {10, 7, 7, 3, 250, 249};
  std::vector<std::uint32_t> counts(256, 0);
  counts[3] = 5;
  simd::ttl_delta_hist(ttl.data(), ttl.size(), counts.data());
  EXPECT_EQ(counts[3], 5u + 1u);  // 10->7, on top of the seed
  EXPECT_EQ(counts[4], 1u);       // 7->3
  EXPECT_EQ(counts[1], 1u);       // 250->249
  EXPECT_EQ(counts[0], 0u);       // equal pairs never count
}

TEST(Simd, FuzzSeededColumnsAgree) {
  // Fuzz sweep: random lengths, offsets and contents; every kernel's three
  // spellings must agree exactly. Seeded, so failures replay.
  std::mt19937_64 rng(0xf022eed);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = rng() % 300;
    const std::size_t offset = rng() % 5;
    std::vector<std::uint64_t> u64(n + offset);
    std::vector<std::uint32_t> u32(n + offset);
    std::vector<std::uint8_t> u8(n + offset);
    for (auto& v : u64) v = rng();
    for (auto& v : u32) v = static_cast<std::uint32_t>(rng());
    for (auto& v : u8) v = static_cast<std::uint8_t>(rng());

    std::vector<std::uint32_t> a32(n), b32(n);
    simd::mask_lo8_zero_scalar(u32.data() + offset, a32.data(), n);
    simd::mask_lo8_zero(u32.data() + offset, b32.data(), n);
    ASSERT_EQ(a32, b32) << "round=" << round;

    const std::uint64_t mask = (1u << (rng() % 11)) - 1;
    simd::mix64_mask_scalar(u64.data() + offset, a32.data(), n, mask);
    simd::mix64_mask(u64.data() + offset, b32.data(), n, mask);
    ASSERT_EQ(a32, b32) << "round=" << round;

    std::vector<std::uint32_t> h1(256, 0), h2(256, 0);
    simd::ttl_delta_hist_scalar(u8.data() + offset, n, h1.data());
    simd::ttl_delta_hist(u8.data() + offset, n, h2.data());
    ASSERT_EQ(h1, h2) << "round=" << round;

    std::vector<std::uint64_t> copy(u64.begin() + offset, u64.end());
    if (!copy.empty() && rng() % 2) copy[rng() % copy.size()] ^= 0x10;
    ASSERT_EQ(simd::mismatch_u64_scalar(u64.data() + offset, copy.data(), n),
              simd::mismatch_u64(u64.data() + offset, copy.data(), n))
        << "round=" << round;
  }
}

}  // namespace
