#include "daemon/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace rloop::daemon {
namespace {

TEST(SpscRing, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
  EXPECT_THROW(SpscRing<int>(3), std::invalid_argument);
  EXPECT_THROW(SpscRing<int>(100), std::invalid_argument);
  EXPECT_NO_THROW(SpscRing<int>(1));
  EXPECT_NO_THROW(SpscRing<int>(2));
  EXPECT_NO_THROW(SpscRing<int>(1 << 16));
}

TEST(SpscRing, FifoOrderAcrossWraparound) {
  SpscRing<int> ring(8);
  int out[8];
  int next_expected = 0;
  // Push/pop interleaved far past the capacity so indices wrap many times.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(round * 5 + i));
    }
    const std::size_t n = ring.pop_batch(out, 8);
    ASSERT_EQ(n, 5u);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], next_expected++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRefusesPushUntilPopped) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  int v = -1;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRing, PopBatchRespectsMax) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  int out[16];
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3], 3);
  EXPECT_EQ(ring.pop_batch(out, 16), 6u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[5], 9);
  EXPECT_EQ(ring.pop_batch(out, 16), 0u);
}

TEST(SpscRing, ThreadedLosslessTransfersEverythingInOrder) {
  constexpr std::uint64_t kCount = 1'000'000;
  SpscRing<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t out[256];
  while (received.size() < kCount) {
    const std::size_t n = ring.pop_batch(out, 256);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    received.insert(received.end(), out, out + n);
  }
  producer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "order violated at " << i;
  }
  EXPECT_TRUE(ring.empty());
}

// Drop-newest under a producer that runs flat out against a deliberately
// slowed consumer: every record is either received or counted dropped
// (pushed == consumed + dropped, exactly), and the received subsequence
// preserves production order.
TEST(SpscRing, ThreadedDropNewestAccountsForEveryRecord) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t dropped = 0;

  std::thread producer([&ring, &dropped] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      if (!ring.try_push(i)) ++dropped;
    }
  });

  std::vector<std::uint64_t> received;
  std::uint64_t out[16];
  bool producer_alive = true;
  while (true) {
    const std::size_t n = ring.pop_batch(out, 16);
    if (n == 0) {
      if (!producer_alive) break;
      if (producer.joinable() && ring.empty()) {
        // Producer may have finished; join once and drain whatever is left.
        producer.join();
        producer_alive = false;
      }
      continue;
    }
    received.insert(received.end(), out, out + n);
    // ~1 us of pretend detection work per batch keeps the consumer behind.
    for (volatile int spin = 0; spin < 300;) {
      spin = spin + 1;
    }
  }

  EXPECT_EQ(received.size() + dropped, kCount);
  EXPECT_GT(dropped, 0u) << "consumer kept up; overload never happened";
  for (std::size_t i = 1; i < received.size(); ++i) {
    ASSERT_LT(received[i - 1], received[i]) << "order violated at " << i;
  }
}

}  // namespace
}  // namespace rloop::daemon
