#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/loop_detector.h"
#include "json_lite.h"
#include "sim/event_queue.h"
#include "trace_builder.h"
#include "util/thread_pool.h"

namespace rloop::telemetry {
namespace {

using net::Ipv4Addr;
using rloop::testing::is_valid_json;
using rloop::testing::TraceBuilder;

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::size_t count_named(const std::vector<SpanEvent>& spans,
                        const std::string& name) {
  std::size_t count = 0;
  for (const auto& ev : spans) {
    if (name == ev.name) ++count;
  }
  return count;
}

TEST(ScopedSpan, RecordsNestingDepthAndContainment) {
  TraceSink sink;
  {
    const ScopedSpan outer(&sink, "outer");
    {
      const ScopedSpan inner(&sink, "inner", "sub");
    }
  }
  const auto spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot() sorts by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_STREQ(spans[1].category, "sub");
  // The child interval nests inside the parent interval.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
}

TEST(ScopedSpan, NullSinkIsInertAndKeepsDepthClean) {
  {
    const ScopedSpan a(nullptr, "ghost");
    const ScopedSpan b(nullptr, "ghost2");
  }
  // Null spans must not have touched the depth bookkeeping: a real span
  // opened afterwards (even nested lexically inside null ones) is top-level.
  TraceSink sink;
  {
    const ScopedSpan ghost(nullptr, "ghost");
    const ScopedSpan real(&sink, "real");
  }
  const auto spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(TraceSink, DropsNewSpansWhenFullAndCounts) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    const ScopedSpan span(&sink, "s");
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
}

TEST(TraceSink, ChromeTraceJsonIsValidAndComplete) {
  TraceSink sink;
  {
    const ScopedSpan outer(&sink, "stage \"one\"\n");  // needs escaping
    const ScopedSpan inner(&sink, "task");
  }
  const std::string json = sink.chrome_trace_json();
  std::string error;
  EXPECT_TRUE(is_valid_json(json, &error)) << error << "\n" << json;
  EXPECT_EQ(count_substr(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("stage \\\"one\\\"\\n"), std::string::npos);
}

TEST(TraceSink, ConcurrentEmissionFromPoolTasks) {
  TraceSink sink;
  constexpr std::size_t kTasks = 64;
  {
    util::ThreadPool pool(4, nullptr, &sink);
    pool.parallel_for(kTasks, [](std::size_t) {
      // Nothing: the pool itself emits one "task" span per body.
    });
  }
  const auto spans = sink.snapshot();
  ASSERT_EQ(spans.size(), kTasks);
  for (const auto& ev : spans) {
    EXPECT_STREQ(ev.name, "task");
    EXPECT_STREQ(ev.category, "task");
    EXPECT_GE(ev.duration_ns, 0);
  }
  std::string error;
  EXPECT_TRUE(is_valid_json(sink.chrome_trace_json(), &error)) << error;
}

net::Trace& looped_trace(TraceBuilder& builder) {
  builder.replica_stream(/*start=*/net::kSecond, Ipv4Addr(10, 1, 2, 3),
                         /*ttl0=*/60, /*ip_id=*/7, /*count=*/6, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  builder.packet(5 * net::kSecond, Ipv4Addr(10, 9, 9, 9), 64, 99);
  return builder.trace();
}

TEST(PipelineSpans, SerialRunEmitsRootAndStageSpans) {
  TraceBuilder builder;
  TraceSink sink;
  core::LoopDetectorConfig config;
  config.trace = &sink;
  const auto result = core::detect_loops(looped_trace(builder), config);
  EXPECT_EQ(result.loops.size(), 1u);

  const auto spans = sink.snapshot();
  EXPECT_EQ(count_named(spans, "detect_loops"), 1u);
  for (const char* stage : {"parse", "detect", "validate", "merge"}) {
    EXPECT_EQ(count_named(spans, stage), 1u) << stage;
  }
  // Stages nest inside the root span.
  for (const auto& ev : spans) {
    if (std::string(ev.name) == "detect_loops") {
      EXPECT_EQ(ev.depth, 0u);
    } else {
      EXPECT_EQ(ev.depth, 1u) << ev.name;
    }
  }
}

TEST(PipelineSpans, ParallelRunEmitsPerShardTaskSpans) {
  TraceBuilder builder;
  TraceSink sink;
  core::LoopDetectorConfig config;
  config.trace = &sink;
  config.parallel.num_threads = 4;
  config.parallel.shard_bits = 2;  // 4 shards
  const auto result = core::detect_loops(looped_trace(builder), config);
  EXPECT_EQ(result.loops.size(), 1u);

  const auto spans = sink.snapshot();
  EXPECT_EQ(count_named(spans, "detect_loops"), 1u);
  EXPECT_EQ(count_named(spans, "detect_shard"), 4u);
  EXPECT_EQ(count_named(spans, "validate_shard"), 4u);
  EXPECT_EQ(count_named(spans, "merge_shard"), 4u);
  EXPECT_GE(count_named(spans, "parse_chunk"), 1u);
  EXPECT_GE(count_named(spans, "hash_chunk"), 1u);
  // Worker-side spans are top level on their own threads (depth 0).
  for (const auto& ev : spans) {
    if (std::string(ev.name) == "detect_shard") EXPECT_EQ(ev.depth, 0u);
  }
  std::string error;
  EXPECT_TRUE(is_valid_json(sink.chrome_trace_json(), &error)) << error;
}

TEST(EventQueueSpans, DispatchedEventsAreTraced) {
  TraceSink sink;
  sim::EventQueue queue;
  queue.attach_trace(&sink);
  int fired = 0;
  queue.schedule(10, [&] { ++fired; });
  queue.schedule(20, [&] { ++fired; });
  queue.run_all();
  EXPECT_EQ(fired, 2);
  const auto spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& ev : spans) {
    EXPECT_STREQ(ev.name, "event");
    EXPECT_STREQ(ev.category, "sim");
  }
}

TEST(TraceThreadId, StableWithinAThread) {
  const auto a = trace_thread_id();
  const auto b = trace_thread_id();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rloop::telemetry
