// Export-vs-register hammer: the /metrics HTTP thread snapshots the registry
// while the consumer thread is still registering late metrics (a label set
// first seen mid-run, e.g. rloop_failpoint_trips_total{name=...}). Run under
// TSan in CI's thread-sanitizer job; the assertions here also pin the
// semantics that make concurrent export safe — stable metric pointers, a
// monotonic generation counter, and snapshots that are each internally
// consistent.
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exporter.h"

namespace rloop::telemetry {
namespace {

TEST(RegistryRace, SnapshotWhileRegisteringAndUpdating) {
  Registry registry;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr int kMetricsPerWriter = 200;

  // Writers: register fresh metrics (unique + shared identities) and hammer
  // updates through the returned pointers.
  std::vector<std::thread> writers;
  std::atomic<int> ready{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      ready.fetch_add(1);
      for (int i = 0; i < kMetricsPerWriter; ++i) {
        Counter* unique = registry.counter(
            "rloop_race_unique_total",
            {{"writer", std::to_string(w)}, {"i", std::to_string(i)}},
            "per-writer metric");
        // Same identity from every writer: must be one metric.
        Counter* shared =
            registry.counter("rloop_race_shared_total", {}, "shared metric");
        Histogram* h = registry.histogram(
            "rloop_race_latency_ns", {1e3, 1e6},
            {{"writer", std::to_string(w)}}, "per-writer histogram");
        for (int j = 0; j < 16; ++j) {
          unique->inc();
          shared->inc();
          h->observe(5e3);
        }
      }
    });
  }

  // Exporter: snapshot + format continuously until the writers finish.
  std::uint64_t last_generation = 0;
  std::size_t last_size = 0;
  std::size_t exports = 0;
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t gen_before = registry.generation();
      const auto snaps = registry.snapshot();
      // Formatting must not depend on quiescence.
      const std::string text = to_prometheus(snaps);
      EXPECT_FALSE(snaps.size() < last_size) << "metric set shrank";
      EXPECT_GE(registry.generation(), gen_before) << "generation regressed";
      EXPECT_GE(gen_before, last_generation);
      // Sorted output is part of the export contract, even mid-registration.
      for (std::size_t i = 1; i < snaps.size(); ++i) {
        EXPECT_FALSE(snaps[i].name < snaps[i - 1].name) << "unsorted snapshot";
      }
      last_generation = gen_before;
      last_size = snaps.size();
      ++exports;
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  exporter.join();
  EXPECT_GT(exports, 0u);

  // Final state: every registration landed exactly once.
  const auto snaps = registry.snapshot();
  std::size_t unique_count = 0;
  double shared_value = -1;
  std::size_t histograms = 0;
  for (const auto& snap : snaps) {
    if (snap.name == "rloop_race_unique_total") ++unique_count;
    if (snap.name == "rloop_race_shared_total") shared_value = snap.value;
    if (snap.name == "rloop_race_latency_ns") ++histograms;
  }
  EXPECT_EQ(unique_count,
            static_cast<std::size_t>(kWriters) * kMetricsPerWriter);
  EXPECT_EQ(shared_value, static_cast<double>(kWriters) * kMetricsPerWriter * 16);
  EXPECT_EQ(histograms, static_cast<std::size_t>(kWriters));
  EXPECT_EQ(registry.size(), snaps.size());

  // Generation counts new registrations only: re-registering an existing
  // identity must not bump it.
  const std::uint64_t gen = registry.generation();
  registry.counter("rloop_race_shared_total", {}, "shared metric");
  EXPECT_EQ(registry.generation(), gen);
  registry.counter("rloop_race_new_total", {}, "new metric");
  EXPECT_EQ(registry.generation(), gen + 1);
}

// Unchanged generation between two snapshots implies the identical metric
// *set* — the property an exporter needs to cache rendered name/label
// strings safely.
TEST(RegistryRace, GenerationPinsMetricSet) {
  Registry registry;
  registry.counter("rloop_gen_a_total", {}, "a")->inc();
  registry.gauge("rloop_gen_b", {}, "b")->set(2);
  const std::uint64_t gen = registry.generation();
  const auto before = registry.snapshot();

  // Value updates do not change the generation or the set.
  registry.counter("rloop_gen_a_total", {}, "a")->inc(41);
  EXPECT_EQ(registry.generation(), gen);
  const auto after = registry.snapshot();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].name, after[i].name);
    EXPECT_EQ(before[i].labels, after[i].labels);
  }
  EXPECT_EQ(after[0].value, 42.0);
}

}  // namespace
}  // namespace rloop::telemetry
