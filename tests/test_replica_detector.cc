#include "core/replica_detector.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/metrics.h"
#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

const Ipv4Addr kDst(203, 0, 113, 10);
const Ipv4Addr kOtherDst(198, 18, 5, 20);

std::vector<ReplicaStream> detect(TraceBuilder& builder,
                                  ReplicaDetectorConfig cfg = {}) {
  const auto records = parse_trace(builder.trace());
  return ReplicaDetector(cfg).detect(builder.trace(), records);
}

TEST(ReplicaDetector, FindsBasicStream) {
  TraceBuilder builder;
  builder.replica_stream(1000, kDst, 60, 7, /*count=*/10, /*delta=*/2,
                         /*spacing=*/net::kMillisecond);
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].size(), 10u);
  EXPECT_EQ(streams[0].dominant_ttl_delta(), 2);
  EXPECT_EQ(streams[0].dst, kDst);
  EXPECT_EQ(streams[0].dst24, net::Prefix::slash24(kDst));
  EXPECT_EQ(streams[0].duration(), 9 * net::kMillisecond);
  EXPECT_DOUBLE_EQ(streams[0].mean_spacing_ns(), 1e6);
}

TEST(ReplicaDetector, NormalTrafficYieldsNoStreams) {
  TraceBuilder builder;
  for (int i = 0; i < 200; ++i) {
    builder.packet(i * 1000, kDst, 60, static_cast<std::uint16_t>(i));
  }
  EXPECT_TRUE(detect(builder).empty());
}

TEST(ReplicaDetector, TtlDeltaOneIsNotAReplica) {
  // Delta 1 cannot come from a loop (a loop spans >= 2 routers). The
  // replica test is pairwise, so of 60/59/58 the 60-58 pair qualifies while
  // the intermediate 59 does not join any stream.
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(1000, kDst, 59, 7);
  builder.packet(2000, kDst, 58, 7);
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].size(), 2u);
  EXPECT_EQ(streams[0].replicas[0].ttl, 60);
  EXPECT_EQ(streams[0].replicas[1].ttl, 58);
}

TEST(ReplicaDetector, MinTtlDeltaConfigurable) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 5, /*delta=*/2, net::kMillisecond);
  ReplicaDetectorConfig cfg;
  cfg.min_ttl_delta = 2;
  const auto at2 = detect(builder, cfg);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0].size(), 5u);
  // With min delta 3, no consecutive pair qualifies, but pairwise matching
  // still chains every-other observation (deltas of 4).
  cfg.min_ttl_delta = 3;
  for (const auto& stream : detect(builder, cfg)) {
    for (int d : stream.ttl_deltas()) {
      EXPECT_GE(d, 3);
    }
  }
}

TEST(ReplicaDetector, LinkLayerDuplicatesFormTwoElementStreams) {
  // Identical packet twice (same TTL): the SONET-duplication case.
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(500, kDst, 60, 7);
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].size(), 2u);
  EXPECT_EQ(streams[0].dominant_ttl_delta(), 0);  // no loop signature
}

TEST(ReplicaDetector, DuplicatesCanBeDisabled) {
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  builder.packet(500, kDst, 60, 7);
  ReplicaDetectorConfig cfg;
  cfg.keep_link_layer_duplicates = false;
  EXPECT_TRUE(detect(builder, cfg).empty());
}

TEST(ReplicaDetector, TimeoutSplitsStreams) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 4, 2, net::kMillisecond);
  // Same key again 30 s later (IP ID reuse): a separate stream.
  builder.replica_stream(30 * net::kSecond, kDst, 60, 7, 4, 2,
                         net::kMillisecond);
  ReplicaDetectorConfig cfg;
  cfg.stream_timeout = 10 * net::kSecond;
  const auto streams = detect(builder, cfg);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].size(), 4u);
  EXPECT_EQ(streams[1].size(), 4u);
}

TEST(ReplicaDetector, TtlIncreaseStartsNewStream) {
  // Retransmission with identical bytes arriving with a HIGHER TTL is a new
  // original, not a replica.
  TraceBuilder builder;
  builder.packet(0, kDst, 30, 7);
  builder.packet(1000, kDst, 28, 7);   // replica (delta 2)
  builder.packet(2000, kDst, 64, 7);   // new original
  builder.packet(3000, kDst, 62, 7);   // its replica
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].replicas.front().ttl, 30);
  EXPECT_EQ(streams[1].replicas.front().ttl, 64);
}

TEST(ReplicaDetector, InterleavedStreamsSeparated) {
  TraceBuilder builder;
  // Two looped packets to different destinations, observations interleaved.
  for (int i = 0; i < 6; ++i) {
    builder.packet(i * 2000, kDst, static_cast<std::uint8_t>(60 - 2 * i), 7);
    builder.packet(i * 2000 + 1000, kOtherDst,
                   static_cast<std::uint8_t>(50 - 2 * i), 9);
  }
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].size(), 6u);
  EXPECT_EQ(streams[1].size(), 6u);
  EXPECT_NE(streams[0].dst, streams[1].dst);
}

TEST(ReplicaDetector, StreamsSortedByStartTime) {
  TraceBuilder builder;
  builder.replica_stream(5 * net::kSecond, kOtherDst, 60, 1, 3, 2,
                         net::kMillisecond);
  builder.replica_stream(6 * net::kSecond, kDst, 60, 2, 3, 2,
                         net::kMillisecond);
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_LT(streams[0].start(), streams[1].start());
}

TEST(ReplicaDetector, MixedDeltasReportDominant) {
  TraceBuilder builder;
  // Deltas: 2, 2, 3, 2 -> dominant 2.
  builder.packet(0, kDst, 60, 7);
  builder.packet(1000, kDst, 58, 7);
  builder.packet(2000, kDst, 56, 7);
  builder.packet(3000, kDst, 53, 7);
  builder.packet(4000, kDst, 51, 7);
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].dominant_ttl_delta(), 2);
  EXPECT_EQ(streams[0].ttl_deltas(), (std::vector<int>{2, 2, 3, 2}));
}

TEST(ReplicaDetector, MalformedRecordsIgnored) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 5, 2, net::kMillisecond);
  // Garbage bytes appended to the trace.
  builder.raw(10 * net::kMillisecond, std::vector<std::byte>(12));
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].size(), 5u);
}

TEST(ReplicaDetector, SweepPreservesLongQuietStreams) {
  // A stream with gaps below the timeout must survive the periodic sweep
  // even when tens of thousands of unrelated packets pass in between.
  TraceBuilder builder;
  builder.packet(0, kDst, 60, 7);
  net::TimeNs t = 1000;
  for (int i = 0; i < 70000; ++i) {
    // Vary the source with the IP ID epoch so 16-bit ID wraparound does not
    // produce accidental byte-identical packets.
    builder.packet(t, kOtherDst, 64, static_cast<std::uint16_t>(i),
                   net::Ipv4Addr(198, 51, 100,
                                 static_cast<std::uint8_t>(1 + (i >> 16))));
    t += 1000;
  }
  builder.packet(t + 1000, kDst, 58, 7);  // within timeout of the head
  ReplicaDetectorConfig cfg;
  cfg.stream_timeout = 10 * net::kSecond;
  const auto streams = detect(builder, cfg);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].size(), 2u);
}

// Property sweep: any synthetic loop with delta in [2, 8] and count in
// [3, 40] is recovered exactly.
class ReplicaSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReplicaSweep, RecoversExactStream) {
  const auto [delta, count] = GetParam();
  TraceBuilder builder;
  // Background noise.
  for (int i = 0; i < 50; ++i) {
    builder.packet(i * 100, kOtherDst, 64, static_cast<std::uint16_t>(i));
  }
  builder.replica_stream(10'000, kDst, 200, 999, count, delta,
                         net::kMillisecond);
  const auto streams = detect(builder);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].size(), static_cast<std::size_t>(count));
  EXPECT_EQ(streams[0].dominant_ttl_delta(), delta);
}

INSTANTIATE_TEST_SUITE_P(
    DeltasAndCounts, ReplicaSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(3, 5, 12, 24)));

// Pins the contract bench/fig4_spacing.cc (and core::spacing_cdf_ms) rely
// on: a stream with fewer than two replicas has NO spacing — the accessor
// returns the 0.0 sentinel, which consumers must skip rather than bin as a
// genuine zero-spacing sample in the Figure 4 CDF.
TEST(ReplicaStreamSpacing, SubTwoReplicaStreamsHaveZeroSentinelSpacing) {
  ReplicaStream empty;
  EXPECT_EQ(empty.mean_spacing_ns(), 0.0);

  ReplicaStream single;
  single.replicas.push_back({/*record_index=*/0, /*ts=*/5'000, /*ttl=*/64});
  EXPECT_EQ(single.mean_spacing_ns(), 0.0);

  // With two replicas the spacing is real and nonzero.
  ReplicaStream pair = single;
  pair.replicas.push_back({/*record_index=*/1, /*ts=*/9'000, /*ttl=*/62});
  EXPECT_EQ(pair.mean_spacing_ns(), 4'000.0);
}

TEST(ReplicaStreamSpacing, SpacingCdfExcludesSubTwoReplicaStreams) {
  ReplicaStream single;
  single.replicas.push_back({0, 1'000, 64});
  ReplicaStream pair;
  pair.replicas.push_back({1, 0, 64});
  pair.replicas.push_back({2, 2'000'000, 62});  // 2 ms spacing
  const std::vector<ReplicaStream> streams{single, pair};
  const auto cdf = spacing_cdf_ms(streams);
  // Only the two-replica stream contributes; a binned 0.0 from the single
  // would show up as a bogus sample below 1 ms.
  EXPECT_EQ(cdf.size(), 1u);
  EXPECT_EQ(cdf.fraction_at_or_below(1.0), 0.0);
  EXPECT_EQ(cdf.fraction_at_or_below(2.0), 1.0);
}

TEST(StreamMembership, MarksExactlyStreamRecords) {
  TraceBuilder builder;
  builder.packet(0, kOtherDst, 64, 1);                          // index 0
  builder.replica_stream(1000, kDst, 60, 7, 3, 2, 1000);        // 1, 2, 3
  builder.packet(10'000, kOtherDst, 64, 2);                     // index 4
  const auto records = parse_trace(builder.trace());
  const auto streams = ReplicaDetector(ReplicaDetectorConfig{}).detect(builder.trace(), records);
  const auto member = stream_membership(records.size(), streams);
  EXPECT_EQ(member, (std::vector<bool>{false, true, true, true, false}));
}

}  // namespace
}  // namespace rloop::core
