// Test helper: field-by-field equality assertions between two
// LoopDetectionResults. The parallel pipeline's contract is bit-identical
// output for every (num_threads, shard_bits); these helpers make a
// divergence fail loudly at the first differing field rather than at some
// downstream aggregate.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/loop_detector.h"

namespace rloop::testing {

inline void expect_equal_streams(const core::ReplicaStream& a,
                                 const core::ReplicaStream& b,
                                 const std::string& where) {
  EXPECT_TRUE(a.key == b.key) << where << ": replica key differs";
  EXPECT_EQ(a.dst, b.dst) << where;
  EXPECT_EQ(a.dst24, b.dst24) << where;
  ASSERT_EQ(a.replicas.size(), b.replicas.size()) << where;
  for (std::size_t r = 0; r < a.replicas.size(); ++r) {
    const auto& ra = a.replicas[r];
    const auto& rb = b.replicas[r];
    EXPECT_EQ(ra.record_index, rb.record_index)
        << where << " replica " << r;
    EXPECT_EQ(ra.ts, rb.ts) << where << " replica " << r;
    EXPECT_EQ(ra.ttl, rb.ttl) << where << " replica " << r;
  }
}

inline void expect_equal_stream_vectors(
    const std::vector<core::ReplicaStream>& a,
    const std::vector<core::ReplicaStream>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what << " count differs";
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_equal_streams(a[i], b[i], what + "[" + std::to_string(i) + "]");
  }
}

inline void expect_equal_loops(const std::vector<core::RoutingLoop>& a,
                               const std::vector<core::RoutingLoop>& b) {
  ASSERT_EQ(a.size(), b.size()) << "loop count differs";
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string where = "loop[" + std::to_string(i) + "]";
    EXPECT_EQ(a[i].prefix24, b[i].prefix24) << where;
    EXPECT_EQ(a[i].start, b[i].start) << where;
    EXPECT_EQ(a[i].end, b[i].end) << where;
    EXPECT_EQ(a[i].stream_indices, b[i].stream_indices) << where;
    EXPECT_EQ(a[i].replica_count, b[i].replica_count) << where;
    EXPECT_EQ(a[i].ttl_delta, b[i].ttl_delta) << where;
  }
}

inline void expect_equal_results(const core::LoopDetectionResult& a,
                                 const core::LoopDetectionResult& b) {
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_EQ(a.parse_failures, b.parse_failures);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].ts, b.records[i].ts) << "record " << i;
    EXPECT_EQ(a.records[i].index, b.records[i].index) << "record " << i;
    EXPECT_EQ(a.records[i].ok, b.records[i].ok) << "record " << i;
    EXPECT_EQ(a.records[i].dst24, b.records[i].dst24) << "record " << i;
  }
  expect_equal_stream_vectors(a.raw_streams, b.raw_streams, "raw_streams");
  expect_equal_stream_vectors(a.valid_streams, b.valid_streams,
                              "valid_streams");
  expect_equal_loops(a.loops, b.loops);
  EXPECT_EQ(a.validation.input_streams, b.validation.input_streams);
  EXPECT_EQ(a.validation.rejected_too_small, b.validation.rejected_too_small);
  EXPECT_EQ(a.validation.rejected_prefix_conflict,
            b.validation.rejected_prefix_conflict);
  EXPECT_EQ(a.validation.accepted, b.validation.accepted);
}

}  // namespace rloop::testing
