#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rloop::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 10);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 10);
    saw_lo |= (v == 3);
    saw_hi |= (v == 10);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(15);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ParetoBounds) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.pareto(1.0, 1.3, 100.0);
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 100.0);
  }
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, RankZeroIsMostPopular) {
  Rng rng(21);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[zipf.sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[49]);
}

TEST(Zipf, UniformWhenExponentZero) {
  Rng rng(23);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(Zipf, SamplesAlwaysInRange) {
  Rng rng(25);
  ZipfSampler zipf(5, 1.2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(zipf.sample(rng), 5u);
  }
}

}  // namespace
}  // namespace rloop::util
