#include "core/impact.h"

#include <gtest/gtest.h>

#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

TEST(Impact, ClassifiesExpiredStream) {
  TraceBuilder builder;
  // TTL runs 60, 58, ..., 2: the next traversal would hit 0 -> expired.
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 60, 1, 30, 2, 1000);
  const auto impact = estimate_impact(detect_loops(builder.trace()));
  EXPECT_EQ(impact.looped_streams, 1u);
  EXPECT_EQ(impact.expired_in_loop, 1u);
  EXPECT_EQ(impact.escape_candidates, 0u);
  EXPECT_DOUBLE_EQ(impact.escape_fraction(), 0.0);
  EXPECT_EQ(impact.loop_loss_per_minute.total(), 30u);
}

TEST(Impact, ClassifiesEscapeCandidate) {
  TraceBuilder builder;
  // Replicas stop at TTL 40: plenty of TTL left, the loop must have healed.
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 60, 1, 11, 2,
                         5 * net::kMillisecond);
  const auto impact = estimate_impact(detect_loops(builder.trace()));
  EXPECT_EQ(impact.looped_streams, 1u);
  EXPECT_EQ(impact.expired_in_loop, 0u);
  EXPECT_EQ(impact.escape_candidates, 1u);
  EXPECT_DOUBLE_EQ(impact.escape_fraction(), 1.0);
  // It demonstrably looped for 50 ms before escaping.
  ASSERT_EQ(impact.escape_extra_delay_ms.size(), 1u);
  EXPECT_NEAR(impact.escape_extra_delay_ms.min(), 50.0, 1e-9);
}

TEST(Impact, MixedStreamsFractions) {
  TraceBuilder builder;
  // Two expiring, two escaping.
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 60, 1, 30, 2, 1000);
  builder.replica_stream(net::kSecond, Ipv4Addr(198, 18, 0, 1), 60, 2, 30, 2,
                         1000);
  builder.replica_stream(2 * net::kSecond, Ipv4Addr(198, 19, 0, 1), 60, 3, 5,
                         2, 1000);
  builder.replica_stream(3 * net::kSecond, Ipv4Addr(198, 20, 0, 1), 60, 4, 5,
                         2, 1000);
  const auto impact = estimate_impact(detect_loops(builder.trace()));
  EXPECT_EQ(impact.looped_streams, 4u);
  EXPECT_EQ(impact.expired_in_loop, 2u);
  EXPECT_EQ(impact.escape_candidates, 2u);
  EXPECT_DOUBLE_EQ(impact.escape_fraction(), 0.5);
}

TEST(Impact, LossBinnedPerMinute) {
  TraceBuilder builder;
  // One expiring stream in minute 0, one in minute 2.
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 1), 8, 1, 4, 2, 1000);
  builder.replica_stream(125 * net::kSecond, Ipv4Addr(198, 18, 0, 1), 8, 2, 4,
                         2, 1000);
  const auto impact = estimate_impact(detect_loops(builder.trace()));
  ASSERT_EQ(impact.loop_loss_per_minute.bins().size(), 3u);
  EXPECT_EQ(impact.loop_loss_per_minute.bins()[0], 4u);
  EXPECT_EQ(impact.loop_loss_per_minute.bins()[1], 0u);
  EXPECT_EQ(impact.loop_loss_per_minute.bins()[2], 4u);
}

TEST(Impact, EmptyResult) {
  net::Trace trace("empty", 0);
  const auto impact = estimate_impact(detect_loops(trace));
  EXPECT_EQ(impact.looped_streams, 0u);
  EXPECT_DOUBLE_EQ(impact.escape_fraction(), 0.0);
}

}  // namespace
}  // namespace rloop::core
