#include "net/pcap_mmap.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

#include "net/packet.h"
#include "net/pcap.h"
#include "net/time.h"

namespace rloop::net {
namespace {

class PcapMmapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rloop_pcap_mmap_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".pcap"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

ParsedPacket sample_packet(std::uint8_t ttl, std::uint16_t id) {
  return make_udp_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(203, 0, 113, 5),
                         1234, 53, 64, ttl, id);
}

// Both readers must produce the same trace, record for record: the mmap
// parser is only an optimization, never a behavior change.
void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.epoch_unix_s(), b.epoch_unix_s());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts) << i;
    EXPECT_EQ(a[i].wire_len, b[i].wire_len) << i;
    EXPECT_EQ(a[i].cap_len, b[i].cap_len) << i;
    EXPECT_EQ(a[i].data, b[i].data) << i;
  }
}

TEST_F(PcapMmapTest, MatchesStreamingReaderOnRoundtripFile) {
  Trace trace("rt", 1'005'224'400);
  for (int i = 0; i < 50; ++i) {
    trace.add(i * kMillisecond + i,
              sample_packet(static_cast<std::uint8_t>(64 - i % 4),
                            static_cast<std::uint16_t>(i)),
              92);
  }
  write_pcap(trace, path_);
  expect_traces_equal(read_pcap(path_), read_pcap_fast(path_));
}

TEST_F(PcapMmapTest, MatchesStreamingReaderOnMicrosecondLittleEndian) {
  const auto pkt = sample_packet(60, 7);
  std::array<std::byte, kMaxHeaderBytes> pkt_buf{};
  const auto pkt_len = serialize_packet(pkt, pkt_buf);

  std::ofstream out(path_, std::ios::binary);
  auto le32 = [&](std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    out.write(b, 4);
  };
  auto le16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
    out.write(b, 2);
  };
  le32(kPcapMagicMicros);
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(kLinktypeRaw);
  le32(500);      // seconds
  le32(250'000);  // microseconds
  le32(static_cast<std::uint32_t>(pkt_len));
  le32(static_cast<std::uint32_t>(pkt_len));
  out.write(reinterpret_cast<const char*>(pkt_buf.data()),
            static_cast<std::streamsize>(pkt_len));
  out.close();

  const Trace fast = read_pcap_fast(path_);
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(fast.epoch_unix_s(), 500);
  EXPECT_EQ(fast[0].ts, 250 * kMillisecond);
  expect_traces_equal(read_pcap(path_), fast);
}

TEST_F(PcapMmapTest, MatchesStreamingReaderOnBigEndianEthernet) {
  const auto pkt = sample_packet(61, 8);
  std::array<std::byte, kMaxHeaderBytes> pkt_buf{};
  const auto pkt_len = serialize_packet(pkt, pkt_buf);

  std::ofstream out(path_, std::ios::binary);
  auto be32 = [&](std::uint32_t v) {
    char b[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 4);
  };
  auto be16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v >> 8), static_cast<char>(v)};
    out.write(b, 2);
  };
  be32(kPcapMagicNanos);
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(kLinktypeEthernet);

  auto write_frame = [&](std::uint16_t ethertype, bool include_payload) {
    const std::uint32_t frame_len =
        14 + (include_payload ? static_cast<std::uint32_t>(pkt_len) : 4);
    be32(7);
    be32(0);
    be32(frame_len);
    be32(frame_len);
    char eth[14] = {};
    eth[12] = static_cast<char>(ethertype >> 8);
    eth[13] = static_cast<char>(ethertype & 0xff);
    out.write(eth, 14);
    if (include_payload) {
      out.write(reinterpret_cast<const char*>(pkt_buf.data()),
                static_cast<std::streamsize>(pkt_len));
    } else {
      char junk[4] = {1, 2, 3, 4};
      out.write(junk, 4);
    }
  };
  write_frame(0x0806, false);  // ARP: skipped
  write_frame(0x0800, true);   // IPv4: kept
  out.close();

  telemetry::Registry reg_slow;
  telemetry::Registry reg_fast;
  const Trace slow = read_pcap(path_, &reg_slow);
  const Trace fast = read_pcap_fast(path_, &reg_fast);
  expect_traces_equal(slow, fast);
  ASSERT_EQ(fast.size(), 1u);
  const auto parsed = parse_packet(fast[0].bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
  // Skip counters must agree as well.
  EXPECT_EQ(telemetry::get_counter(&reg_fast,
                                   "rloop_pcap_records_skipped_total",
                                   {{"reason", "non_ipv4"}}, "")
                ->value(),
            telemetry::get_counter(&reg_slow,
                                   "rloop_pcap_records_skipped_total",
                                   {{"reason", "non_ipv4"}}, "")
                ->value());
}

TEST_F(PcapMmapTest, CountsTruncatedRecordLikeStreamingReader) {
  Trace trace("rt", 0);
  trace.add(0, sample_packet(64, 1), 92);
  trace.add(kMillisecond, sample_packet(62, 2), 92);
  write_pcap(trace, path_);
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);

  telemetry::Registry reg_slow;
  telemetry::Registry reg_fast;
  const Trace slow = read_pcap(path_, &reg_slow);
  const Trace fast = read_pcap_fast(path_, &reg_fast);
  expect_traces_equal(slow, fast);
  EXPECT_EQ(fast.size(), 1u);
  EXPECT_EQ(telemetry::get_counter(&reg_fast,
                                   "rloop_pcap_truncated_records_total", {}, "")
                ->value(),
            1u);
  EXPECT_EQ(telemetry::get_counter(&reg_slow,
                                   "rloop_pcap_truncated_records_total", {}, "")
                ->value(),
            1u);
}

TEST_F(PcapMmapTest, RejectsBadMagic) {
  std::ofstream out(path_, std::ios::binary);
  const char junk[24] = {1, 2, 3};
  out.write(junk, sizeof junk);
  out.close();
  EXPECT_THROW(read_pcap_fast(path_), std::runtime_error);
}

TEST_F(PcapMmapTest, RejectsTruncatedFileHeader) {
  std::ofstream out(path_, std::ios::binary);
  const char junk[10] = {};
  out.write(junk, sizeof junk);
  out.close();
  EXPECT_THROW(read_pcap_fast(path_), std::runtime_error);

  // Empty file: same contract.
  std::ofstream(path_, std::ios::binary | std::ios::trunc).close();
  EXPECT_THROW(read_pcap_fast(path_), std::runtime_error);
}

TEST_F(PcapMmapTest, RejectsMissingFile) {
  EXPECT_THROW(read_pcap_fast("/nonexistent/dir/file.pcap"),
               std::runtime_error);
}

TEST_F(PcapMmapTest, BufferParserRejectsImplausibleRecordLength) {
  std::vector<std::byte> buf(64);  // file header (24) + record header (16)
  std::size_t n = 0;
  auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf[n++] = std::byte(v >> (8 * i));
  };
  auto le16 = [&](std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf[n++] = std::byte(v >> (8 * i));
  };
  le32(kPcapMagicNanos);
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(kLinktypeRaw);
  le32(0);
  le32(0);
  le32((1u << 20) + 1);  // cap_len beyond the sanity bound
  le32(64);
  EXPECT_THROW(
      parse_pcap_buffer(std::span<const std::byte>(buf.data(), n), "buf"),
      std::runtime_error);
}

}  // namespace
}  // namespace rloop::net
