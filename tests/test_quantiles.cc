// Quantile estimation over fixed-bucket histograms (telemetry/quantiles.h):
// interpolation exactness within one bucket, the +Inf clamp, merge
// semantics, and the derived-summary export path.
#include "telemetry/quantiles.h"

#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/counter.h"
#include "telemetry/registry.h"

namespace rloop::telemetry {
namespace {

TEST(Quantiles, RejectsMalformedInput) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> ok = {1, 1, 1};
  EXPECT_THROW(estimate_quantile(bounds, {1, 1}, 0.5), std::invalid_argument);
  EXPECT_THROW(estimate_quantile(bounds, ok, 0.0), std::invalid_argument);
  EXPECT_THROW(estimate_quantile(bounds, ok, 1.0), std::invalid_argument);
  EXPECT_THROW(estimate_quantile(bounds, ok, -0.5), std::invalid_argument);
}

TEST(Quantiles, EmptyHistogramIsNaN) {
  EXPECT_TRUE(std::isnan(estimate_quantile({1.0, 2.0}, {0, 0, 0}, 0.5)));
}

TEST(Quantiles, InterpolatesLinearlyInsideBucket) {
  // 10 observations uniform in [0, 10): the median interpolates to the
  // middle of the single occupied bucket.
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<std::uint64_t> buckets = {10, 0, 0};
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, buckets, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, buckets, 0.9), 9.0);

  // Second bucket [10, 20): rank falls there once q crosses the first
  // bucket's mass.
  const std::vector<std::uint64_t> split = {5, 5, 0};
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, split, 0.75), 15.0);
}

TEST(Quantiles, EstimateIsWithinOneBucketWidthOfTruth) {
  // 1000 observations of value v = i (uniform 0..999) into decade buckets.
  const std::vector<double> bounds = {1, 10, 100, 1000, 10000};
  std::vector<std::uint64_t> buckets(bounds.size() + 1, 0);
  auto bucket_of = [&](double v) {
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i]) ++i;
    return i;
  };
  for (int i = 0; i < 1000; ++i) buckets[bucket_of(i)]++;
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = q * 1000.0;
    const double estimate = estimate_quantile(bounds, buckets, q);
    // Containing bucket for all three ranks is (100, 1000]: error bound is
    // that bucket's width.
    EXPECT_NEAR(estimate, exact, 900.0) << "q=" << q;
    EXPECT_GT(estimate, 100.0) << "q=" << q;
    EXPECT_LE(estimate, 1000.0) << "q=" << q;
  }
}

TEST(Quantiles, OverflowBucketClampsToLargestBound) {
  const std::vector<double> bounds = {1.0, 8.0};
  const std::vector<std::uint64_t> buckets = {0, 0, 7};  // all overflow
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, buckets, 0.5), 8.0);
  EXPECT_DOUBLE_EQ(estimate_quantile(bounds, buckets, 0.99), 8.0);
}

TEST(Quantiles, MonotoneInQ) {
  const std::vector<double> bounds = {1, 4, 16, 64};
  const std::vector<std::uint64_t> buckets = {3, 9, 4, 2, 1};
  double prev = 0;
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double est = estimate_quantile(bounds, buckets, q);
    EXPECT_GE(est, prev) << "q=" << q;
    prev = est;
  }
}

TEST(Quantiles, MergeSumsBucketsAndRequiresIdenticalBounds) {
  MetricSnapshot a;
  a.type = MetricType::histogram;
  a.bounds = {1.0, 2.0};
  a.buckets = {1, 2, 3};
  a.count = 6;
  a.sum = 10.0;
  MetricSnapshot b = a;
  b.buckets = {4, 0, 1};
  b.count = 5;
  b.sum = 3.5;

  merge_histogram(a, b);
  EXPECT_EQ(a.buckets, (std::vector<std::uint64_t>{5, 2, 4}));
  EXPECT_EQ(a.count, 11u);
  EXPECT_DOUBLE_EQ(a.sum, 13.5);

  // The merged histogram answers quantiles for the union: the median rank
  // (5.5 of 11) falls 0.5 deep into the second bucket (1, 2] of mass 2 —
  // 1 + (5.5 - 5)/2 = 1.25.
  EXPECT_DOUBLE_EQ(estimate_quantile(a.bounds, a.buckets, 0.5), 1.25);

  MetricSnapshot mismatched = b;
  mismatched.bounds = {1.0, 3.0};
  EXPECT_THROW(merge_histogram(a, mismatched), std::invalid_argument);
  MetricSnapshot not_histogram;
  not_histogram.type = MetricType::counter;
  EXPECT_THROW(merge_histogram(a, not_histogram), std::invalid_argument);
}

TEST(Quantiles, SummarizeDerivesSummariesFromLiveRegistry) {
  Registry registry;
  Histogram* h = registry.histogram("rloop_test_latency_ns", {10, 100, 1000},
                                    {{"stage", "parse"}}, "test latency");
  for (int i = 0; i < 100; ++i) h->observe(50.0);
  registry.counter("rloop_test_total", {}, "a counter")->inc();
  registry.histogram("rloop_test_empty_ns", {1, 2}, {}, "never observed");

  const auto snaps = registry.snapshot();
  const auto summaries = summarize_histograms(snaps);

  // Only the observed histogram produces a summary; counters and empty
  // histograms are skipped.
  ASSERT_EQ(summaries.size(), 1u);
  const auto& s = summaries[0];
  EXPECT_EQ(s.name, "rloop_test_latency_ns_quantiles");
  EXPECT_EQ(s.type, MetricType::summary);
  ASSERT_EQ(s.labels.size(), 1u);
  EXPECT_EQ(s.labels[0].second, "parse");
  EXPECT_EQ(s.count, 100u);
  ASSERT_EQ(s.quantiles.size(), 3u);
  EXPECT_DOUBLE_EQ(s.quantiles[0].first, 0.5);
  EXPECT_DOUBLE_EQ(s.quantiles[1].first, 0.95);
  EXPECT_DOUBLE_EQ(s.quantiles[2].first, 0.99);
  for (const auto& [q, v] : s.quantiles) {
    // All observations sit in bucket (10, 100].
    EXPECT_GT(v, 10.0) << "q=" << q;
    EXPECT_LE(v, 100.0) << "q=" << q;
  }
}

}  // namespace
}  // namespace rloop::telemetry
