#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/packet.h"
#include "sim/network.h"
#include "trafficgen/address_model.h"
#include "trafficgen/flow.h"
#include "trafficgen/ttl_model.h"
#include "trafficgen/workload.h"

namespace rloop::trafficgen {
namespace {

using net::Ipv4Addr;
using net::Prefix;

TEST(TtlModel, SamplesOnlyConfiguredValues) {
  util::Rng rng(1);
  TtlModel model({{64, 1.0}, {128, 1.0}});
  for (int i = 0; i < 100; ++i) {
    const auto ttl = model.sample(rng);
    EXPECT_TRUE(ttl == 64 || ttl == 128);
  }
}

TEST(TtlModel, RespectsWeights) {
  util::Rng rng(2);
  TtlModel model({{64, 9.0}, {128, 1.0}});
  int n64 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng) == 64) ++n64;
  }
  EXPECT_NEAR(static_cast<double>(n64) / n, 0.9, 0.02);
}

TEST(TtlModel, StandardModelNormalized) {
  const auto model = TtlModel::standard();
  double total = 0;
  for (const auto& [ttl, w] : model.table()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TtlModel, ThreeModesIncludes32) {
  const auto model = TtlModel::three_modes();
  bool has32 = false;
  for (const auto& [ttl, w] : model.table()) {
    if (ttl == 32) has32 = (w > 0.1);
  }
  EXPECT_TRUE(has32);
}

TEST(TtlModel, RejectsBadTables) {
  EXPECT_THROW(TtlModel({}), std::invalid_argument);
  EXPECT_THROW(TtlModel({{64, 0.0}}), std::invalid_argument);
  EXPECT_THROW(TtlModel({{64, -1.0}}), std::invalid_argument);
}

TEST(PrefixPool, GeneratesDistinctPrefixes) {
  util::Rng rng(3);
  PrefixPoolConfig cfg;
  cfg.prefix_count = 200;
  PrefixPool pool(cfg, rng);
  std::set<Prefix> distinct(pool.prefixes().begin(), pool.prefixes().end());
  EXPECT_EQ(distinct.size(), 200u);
  for (const auto& p : pool.prefixes()) {
    EXPECT_EQ(p.len, 24);
    const auto first = p.addr.value >> 24;
    EXPECT_NE(first, 10u);   // reserved for the simulator
    EXPECT_NE(first, 127u);  // loopback
    EXPECT_LT(first, 224u);  // no multicast
    EXPECT_GE(first, 1u);
  }
}

TEST(PrefixPool, ClassCFractionApproximatelyRespected) {
  util::Rng rng(4);
  PrefixPoolConfig cfg;
  cfg.prefix_count = 1000;
  cfg.class_c_fraction = 0.7;
  PrefixPool pool(cfg, rng);
  int class_c = 0;
  for (const auto& p : pool.prefixes()) {
    const auto first = p.addr.value >> 24;
    if (first >= 192 && first <= 223) ++class_c;
  }
  EXPECT_NEAR(class_c / 1000.0, 0.7, 0.06);
}

TEST(PrefixPool, HostsLieInsideTheirPrefix) {
  util::Rng rng(5);
  PrefixPool pool({.prefix_count = 10}, rng);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (int j = 0; j < 20; ++j) {
      const auto host = pool.sample_host(i, rng);
      EXPECT_TRUE(pool.prefixes()[i].contains(host));
      EXPECT_NE(host.value & 0xff, 0u);    // not the network address
      EXPECT_NE(host.value & 0xff, 255u);  // not broadcast
    }
  }
}

TEST(PrefixPool, PopularityIsZipfSkewed) {
  util::Rng rng(6);
  PrefixPool pool({.prefix_count = 100, .zipf_s = 1.0}, rng);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[pool.sample_index(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(MulticastGroups, AlwaysInClassD) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto g = sample_multicast_group(rng);
    EXPECT_EQ(g.value >> 28, 0xeu);
  }
}

// --- flows ----------------------------------------------------------------

struct FlowHarness {
  routing::Topology topo;
  routing::NodeId a, b;
  std::unique_ptr<sim::Network> network;
  std::size_t tap = 0;

  FlowHarness() {
    a = topo.add_node("a");
    b = topo.add_node("b");
    const auto link = topo.add_link(a, b, net::kMillisecond, 1e9, 5000, 1);
    network = std::make_unique<sim::Network>(topo, 1, sim::NetworkConfig{});
    network->attach_external_route({*Prefix::parse("203.0.113.0/24"), {b}});
    network->install_all_routes();
    tap = network->add_tap(link, a, "tap", 0);
  }

  std::vector<net::ParsedPacket> run_flow(FlowSpec spec) {
    util::Rng rng(9);
    spec.ingress = a;
    emit_flow(*network, spec, rng);
    network->run_all();
    std::vector<net::ParsedPacket> packets;
    for (const auto& rec : network->tap_trace(tap).records()) {
      auto parsed = net::parse_packet(rec.bytes());
      if (parsed) packets.push_back(*parsed);
    }
    return packets;
  }
};

FlowSpec base_spec(FlowType type, int packets) {
  FlowSpec spec;
  spec.type = type;
  spec.src = Ipv4Addr(198, 51, 100, 1);
  spec.dst = Ipv4Addr(203, 0, 113, 50);
  spec.src_port = 4242;
  spec.dst_port = 80;
  spec.packet_count = packets;
  spec.start = net::kSecond;
  spec.initial_ttl = 64;
  spec.first_ip_id = 100;
  return spec;
}

TEST(Flow, TcpLifecycleSynFirstFinOrRstLast) {
  FlowHarness harness;
  const auto packets = harness.run_flow(base_spec(FlowType::tcp, 20));
  ASSERT_EQ(packets.size(), 20u);
  ASSERT_NE(packets.front().tcp(), nullptr);
  EXPECT_TRUE(packets.front().tcp()->has(net::kTcpSyn));
  const auto* last = packets.back().tcp();
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->has(net::kTcpFin) || last->has(net::kTcpRst));
  // Middle packets never carry SYN.
  for (std::size_t i = 1; i + 1 < packets.size(); ++i) {
    EXPECT_FALSE(packets[i].tcp()->has(net::kTcpSyn)) << i;
  }
}

TEST(Flow, IpIdsIncrementPerPacket) {
  FlowHarness harness;
  const auto packets = harness.run_flow(base_spec(FlowType::udp, 15));
  ASSERT_EQ(packets.size(), 15u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].ip.id, 100 + i);
  }
}

TEST(Flow, IcmpEchoSequenceNumbersIncrement) {
  FlowHarness harness;
  const auto packets = harness.run_flow(base_spec(FlowType::icmp_echo, 5));
  ASSERT_EQ(packets.size(), 5u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    ASSERT_NE(packets[i].icmp(), nullptr);
    EXPECT_EQ(packets[i].icmp()->type, 8);  // echo request
    EXPECT_EQ(packets[i].icmp()->rest & 0xffff, i + 1);
  }
}

TEST(Flow, AllPacketsCarryConfiguredTtl) {
  FlowHarness harness;
  auto spec = base_spec(FlowType::tcp, 10);
  spec.initial_ttl = 128;
  const auto packets = harness.run_flow(spec);
  for (const auto& pkt : packets) {
    EXPECT_EQ(pkt.ip.ttl, 127);  // one forwarding hop to the tap
  }
}

// --- workload ---------------------------------------------------------------

TEST(Workload, GeneratesApproximateMix) {
  routing::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto link = topo.add_link(a, b, net::kMillisecond, 10e9, 100000, 1);
  sim::Network network(topo, 1, {});

  util::Rng pool_rng(11);
  auto dst = std::make_shared<PrefixPool>(PrefixPoolConfig{.prefix_count = 50},
                                          pool_rng);
  auto src = std::make_shared<PrefixPool>(PrefixPoolConfig{.prefix_count = 20},
                                          pool_rng);
  for (const auto& p : dst->prefixes()) {
    network.attach_external_route({p, {b}});
  }
  network.attach_external_route(
      {Prefix::of(Ipv4Addr(224, 0, 0, 0), 4), {b}});
  for (const auto& p : src->prefixes()) {
    network.attach_external_route({p, {a}});
  }
  network.install_all_routes();
  const auto tap = network.add_tap(link, a, "tap", 0);

  WorkloadConfig cfg;
  cfg.duration = 30 * net::kSecond;
  cfg.flows_per_second = 120;
  Workload workload(cfg, dst, src, TtlModel::standard(), {a});
  workload.install(network, 77);
  network.run_all();

  EXPECT_GT(workload.flows_generated(), 2000u);
  EXPECT_GT(workload.packets_generated(), 10000u);

  const auto& trace = network.tap_trace(tap);
  std::uint64_t tcp = 0, udp = 0, icmp = 0, total = 0;
  for (const auto& rec : trace.records()) {
    const auto parsed = net::parse_packet(rec.bytes());
    ASSERT_TRUE(parsed.has_value());
    ++total;
    if (parsed->tcp()) ++tcp;
    else if (parsed->udp()) ++udp;
    else if (parsed->icmp()) ++icmp;
  }
  ASSERT_GT(total, 0u);
  // Figure 5 shape: TCP dominates, UDP is 5-15 %, some ICMP present.
  EXPECT_GT(static_cast<double>(tcp) / total, 0.75);
  const double udp_fraction = static_cast<double>(udp) / total;
  EXPECT_GT(udp_fraction, 0.03);
  EXPECT_LT(udp_fraction, 0.25);
  EXPECT_GT(icmp, 0u);
}

TEST(Workload, DeterministicGivenSeeds) {
  auto run_once = []() {
    routing::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    topo.add_link(a, b, net::kMillisecond, 10e9, 100000, 1);
    sim::Network network(topo, 1, {});
    util::Rng pool_rng(11);
    auto dst = std::make_shared<PrefixPool>(
        PrefixPoolConfig{.prefix_count = 20}, pool_rng);
    auto src = std::make_shared<PrefixPool>(
        PrefixPoolConfig{.prefix_count = 10}, pool_rng);
    for (const auto& p : dst->prefixes()) network.attach_external_route({p, {b}});
    network.attach_external_route({Prefix::of(Ipv4Addr(224, 0, 0, 0), 4), {b}});
    for (const auto& p : src->prefixes()) network.attach_external_route({p, {a}});
    network.install_all_routes();
    WorkloadConfig cfg;
    cfg.duration = 5 * net::kSecond;
    cfg.flows_per_second = 50;
    Workload workload(cfg, dst, src, TtlModel::standard(), {a});
    workload.install(network, 123);
    network.run_all();
    return workload.packets_generated();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Workload, ValidatesConstruction) {
  util::Rng rng(1);
  auto pool = std::make_shared<PrefixPool>(PrefixPoolConfig{.prefix_count = 5},
                                           rng);
  WorkloadConfig cfg;
  EXPECT_THROW(Workload(cfg, nullptr, pool, TtlModel::standard(), {0}),
               std::invalid_argument);
  EXPECT_THROW(Workload(cfg, pool, pool, TtlModel::standard(), {}),
               std::invalid_argument);
  cfg.flows_per_second = 0;
  EXPECT_THROW(Workload(cfg, pool, pool, TtlModel::standard(), {0}),
               std::invalid_argument);
}

TEST(RatePhase, MultiplierFlatAndInterpolated) {
  const std::vector<RatePhase> phases = {
      // Flat burst at 4x for [10s, 20s).
      {.start = 10 * net::kSecond,
       .end = 20 * net::kSecond,
       .mult_begin = 4.0,
       .mult_end = 4.0},
      // Linear ramp 1x -> 5x across [30s, 40s).
      {.start = 30 * net::kSecond,
       .end = 40 * net::kSecond,
       .mult_begin = 1.0,
       .mult_end = 5.0},
  };
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 0), 1.0);  // outside: base rate
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 10 * net::kSecond), 4.0);
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 15 * net::kSecond), 4.0);
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 25 * net::kSecond), 1.0);
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 30 * net::kSecond), 1.0);
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 35 * net::kSecond), 3.0);
  EXPECT_NEAR(phase_multiplier(phases, 40 * net::kSecond - 1), 5.0, 1e-6);
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 45 * net::kSecond), 1.0);
}

TEST(RatePhase, NextBoundaryWalksStartsAndEnds) {
  const std::vector<RatePhase> phases = {
      {.start = 10 * net::kSecond, .end = 20 * net::kSecond},
      {.start = 30 * net::kSecond, .end = 40 * net::kSecond},
  };
  EXPECT_EQ(next_phase_boundary(phases, 0), 10 * net::kSecond);
  // Strictly after t: standing on a boundary yields the next one.
  EXPECT_EQ(next_phase_boundary(phases, 10 * net::kSecond), 20 * net::kSecond);
  EXPECT_EQ(next_phase_boundary(phases, 15 * net::kSecond), 20 * net::kSecond);
  EXPECT_EQ(next_phase_boundary(phases, 20 * net::kSecond), 30 * net::kSecond);
  EXPECT_EQ(next_phase_boundary(phases, 35 * net::kSecond), 40 * net::kSecond);
  EXPECT_EQ(next_phase_boundary(phases, 40 * net::kSecond), -1);
}

TEST(RatePhase, ActivePhaseHalfOpenWindows) {
  const std::vector<RatePhase> phases = {
      {.start = 10 * net::kSecond, .end = 20 * net::kSecond, .focus_rank = 3},
  };
  EXPECT_EQ(active_phase(phases, 10 * net::kSecond - 1), nullptr);
  const RatePhase* active = active_phase(phases, 10 * net::kSecond);
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->focus_rank, 3u);
  EXPECT_NE(active_phase(phases, 20 * net::kSecond - 1), nullptr);
  EXPECT_EQ(active_phase(phases, 20 * net::kSecond), nullptr);  // end excluded
}

TEST(RatePhase, EmptyPhaseListIsIdentity) {
  const std::vector<RatePhase> phases;
  EXPECT_DOUBLE_EQ(phase_multiplier(phases, 12345), 1.0);
  EXPECT_EQ(next_phase_boundary(phases, 0), -1);
  EXPECT_EQ(active_phase(phases, 0), nullptr);
}

}  // namespace
}  // namespace rloop::trafficgen
