#!/bin/sh
# Failpoint matrix: arm each production failpoint site in turn and require
# rloopd to degrade gracefully — clean exit with a consistent invariant, no
# crash, no hang. Runs only against a -DRLOOP_FAILPOINTS=ON build (with
# failpoints compiled out every spec below is inert and the matrix proves
# nothing, so ctest gates it on the option).
#
# Usage: failpoint_matrix.sh <rloopd-binary> [pcap_inspect-binary]
set -eu

RLOOPD=$1
PCAP_INSPECT=${2:-}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/rloop_fpmatrix.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

run_site() {
  spec=$1
  shift
  echo "== $spec =="
  if ! RLOOP_FAILPOINTS_SPEC="$spec" timeout 120 "$RLOOPD" "$@" \
      >"$WORK/out" 2>"$WORK/err"; then
    echo "FAIL: $spec: rloopd exited non-zero" >&2
    cat "$WORK/err" >&2
    exit 1
  fi
}

# drop-newest so a single injected push failure sheds one record instead of
# blocking the producer forever.
SCEN="--scenario ddos_burst --seed 0 --speed max --policy drop-newest --quiet"

for site in daemon.ring.push daemon.ring.pop daemon.epoch \
            daemon.governor.degrade streaming.insert arena.alloc \
            flat_map.grow; do
  run_site "$site=trip@nth:5" $SCEN --alerts-out "$WORK/alerts.txt"
done

# A failed snapshot write must be absorbed (counted, retried next epoch),
# never fatal — and must not leave a half-written file the next start trusts.
run_site "daemon.checkpoint.write=trip@nth:2" $SCEN \
  --checkpoint-dir "$WORK/ckpt"
env -u RLOOP_FAILPOINTS_SPEC timeout 120 "$RLOOPD" $SCEN \
  --checkpoint-dir "$WORK/ckpt" >"$WORK/out" 2>"$WORK/err" || {
  echo "FAIL: restart after tripped checkpoint write" >&2
  cat "$WORK/err" >&2
  exit 1
}

# SIGHUP mid-run with the reload failpoint tripped: the reload is abandoned,
# the running config stays live, and the run still completes.
echo "== daemon.config.reload=trip@nth:1 (live SIGHUP) =="
echo "stats_interval_s=0" >"$WORK/reload.conf"
RLOOP_FAILPOINTS_SPEC="daemon.config.reload=trip@nth:1" \
  timeout 120 "$RLOOPD" --scenario ddos_burst --seed 0 --speed 5 \
  --policy drop-newest --quiet --config "$WORK/reload.conf" \
  >"$WORK/out" 2>"$WORK/err" &
PID=$!
sleep 2
kill -HUP "$PID" 2>/dev/null || true
if ! wait "$PID"; then
  echo "FAIL: daemon.config.reload trip during SIGHUP" >&2
  cat "$WORK/err" >&2
  exit 1
fi

# pcap ingest sites need a real capture; pcap_inspect --selftest writes one.
if [ -n "$PCAP_INSPECT" ]; then
  TMPDIR="$WORK" "$PCAP_INSPECT" --selftest >/dev/null
  PCAP="$WORK/rloop_selftest.pcap"
  # pcap.read: the stream is cut short and counted as truncated.
  run_site "pcap.read=trip@nth:40" --pcap "$PCAP" --speed max --quiet
  # pcap.mmap: the fast path reports failure and ingest falls back to the
  # ifstream reader with identical records.
  run_site "pcap.mmap=trip@nth:1" --pcap "$PCAP" --speed max --quiet
fi

echo "failpoint_matrix: PASS"
