// Hostile-input tests over the committed corpus in tests/data/hostile/:
// bad magic, absurd snaplen/record lengths, zero-length records, and a
// record header claiming more bytes than the file holds. Every reader
// (ifstream, in-memory buffer, mmap) must agree: malformed framing throws,
// torn tails are counted warnings, and nothing crashes — these files are
// what a fuzzer or a dying capture box hands the daemon. Also the
// mmap-truncation regression: a file shrunk between open and parse must
// be a counted truncation, not a SIGBUS.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/pcap.h"
#include "net/pcap_mmap.h"
#include "telemetry/registry.h"

namespace rloop::net {
namespace {

std::string hostile_path(const std::string& name) {
  return std::string(RLOOP_HOSTILE_DIR) + "/" + name;
}

std::vector<std::byte> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(chars.size());
  for (std::size_t i = 0; i < chars.size(); ++i) {
    bytes[i] = static_cast<std::byte>(chars[i]);
  }
  return bytes;
}

std::uint64_t truncated_count(telemetry::Registry& reg) {
  return telemetry::get_counter(&reg, "rloop_pcap_truncated_records_total", {},
                                "")
      ->value();
}

// Runs one corpus file through all three ingest paths and checks they agree.
struct Outcome {
  bool threw = false;
  std::size_t records = 0;
  std::uint64_t truncated = 0;
};

Outcome run_reader(int which, const std::string& path) {
  telemetry::Registry reg;
  Outcome out;
  try {
    Trace trace = [&] {
      switch (which) {
        case 0:
          return read_pcap(path, &reg);
        case 1: {
          const auto bytes = slurp(path);
          return parse_pcap_buffer(bytes, "buf:" + path, &reg);
        }
        default:
          return read_pcap_fast(path, &reg);
      }
    }();
    out.records = trace.size();
  } catch (const std::runtime_error&) {
    out.threw = true;
  }
  out.truncated = truncated_count(reg);
  return out;
}

class HostilePcap : public ::testing::TestWithParam<int> {};

std::string reader_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"ifstream", "buffer", "mmap_fast"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllReaders, HostilePcap, ::testing::Values(0, 1, 2),
                         reader_name);

TEST_P(HostilePcap, BadMagicThrows) {
  const Outcome out = run_reader(GetParam(), hostile_path("bad_magic.pcap"));
  EXPECT_TRUE(out.threw);
}

// The snaplen field is attacker-controlled noise; the per-record cap_len
// of 2 MiB is what must be rejected (the >1 MiB plausibility throw) before
// any 2 MiB allocation or read happens.
TEST_P(HostilePcap, AbsurdRecordLengthThrows) {
  const Outcome out =
      run_reader(GetParam(), hostile_path("absurd_snaplen.pcap"));
  EXPECT_TRUE(out.threw);
}

TEST_P(HostilePcap, ZeroLengthRecordsAreHarmless) {
  const Outcome out =
      run_reader(GetParam(), hostile_path("zero_len_records.pcap"));
  EXPECT_FALSE(out.threw);
  // Three empty records plus one 4-byte runt, all raw-IP: every record
  // lands in the trace (parse failures are the detector's concern, not the
  // reader's) and none is a truncation.
  EXPECT_EQ(out.records, 4u);
  EXPECT_EQ(out.truncated, 0u);
}

TEST_P(HostilePcap, OverclaimedRecordIsCountedTruncation) {
  const Outcome out = run_reader(GetParam(), hostile_path("overclaim.pcap"));
  EXPECT_FALSE(out.threw);
  EXPECT_EQ(out.records, 0u);
  EXPECT_EQ(out.truncated, 1u);
}

TEST_P(HostilePcap, TornRecordHeaderIsCountedTruncation) {
  const Outcome out = run_reader(GetParam(), hostile_path("torn_header.pcap"));
  EXPECT_FALSE(out.threw);
  EXPECT_EQ(out.records, 1u);  // the whole zero-length record before the tear
  EXPECT_EQ(out.truncated, 1u);
}

// --- mmap shrink regression -------------------------------------------------

struct ShrinkState {
  std::string path;
  std::uintmax_t new_size = 0;
};
ShrinkState g_shrink;

void shrink_hook() {
  std::filesystem::resize_file(g_shrink.path, g_shrink.new_size);
}

// A capture file shrunk between mmap and parse (rotating capture tooling
// does this) must not SIGBUS: the reader re-checks the size and parses only
// the bytes the file still covers, counting the cut as a truncation.
TEST(HostilePcapShrink, FileShrunkDuringMmapIsCountedNotFatal) {
  const std::string path = ::testing::TempDir() + "/rloop_shrink.pcap";
  Trace trace("shrink", 0);
  for (int i = 0; i < 100; ++i) {
    trace.add(i * kMillisecond,
              make_udp_packet(Ipv4Addr(10, 0, 0, 1),
                              Ipv4Addr(203, 0, 113, 5), 1234, 53, 64, 64,
                              static_cast<std::uint16_t>(i)),
              92);
  }
  write_pcap(trace, path);

  // Chop mid-body of a record near the end, after mmap sampled the size.
  g_shrink.path = path;
  g_shrink.new_size = std::filesystem::file_size(path) - 21;
  pcap_mmap_test_hook = &shrink_hook;
  telemetry::Registry reg;
  std::optional<Trace> back;
  ASSERT_NO_THROW(back = read_pcap_mmap(path, &reg));
  pcap_mmap_test_hook = nullptr;

  ASSERT_TRUE(back.has_value()) << "mmap path must not fall back here";
  EXPECT_EQ(back->size(), 99u) << "complete records before the cut survive";
  EXPECT_EQ(truncated_count(reg), 1u);
  for (std::size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ((*back)[i].data, trace[i].data) << "record " << i;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rloop::net
