// Edge cases from the paper's operating environment that cut across
// modules: fragmented packets looping, link restoration re-convergence,
// scenario-4's transit-chain data path, and multicast forwarding.
#include <gtest/gtest.h>

#include "core/loop_detector.h"
#include "net/packet.h"
#include "scenarios/backbone.h"
#include "sim/network.h"
#include "trace_builder.h"

namespace rloop {
namespace {

using net::Ipv4Addr;

// A non-first fragment has no transport header in its capture, but its IP
// header (including the fragment offset and ID) still identifies replicas:
// a looping fragment must be detected like any other packet.
TEST(EdgeCases, FragmentReplicasAreDetected) {
  net::Trace trace("frags", 0);
  for (int i = 0; i < 6; ++i) {
    auto pkt = net::make_udp_packet(Ipv4Addr(198, 51, 100, 1),
                                    Ipv4Addr(203, 0, 113, 9), 1000, 2000, 64,
                                    static_cast<std::uint8_t>(60 - 2 * i), 77);
    pkt.ip.fragment_offset = 185;  // non-first fragment
    pkt.ip.more_fragments = true;
    pkt.ip.checksum = pkt.ip.compute_checksum();
    trace.add(i * net::kMillisecond, pkt, pkt.ip.total_length);
  }
  const auto result = core::detect_loops(trace);
  ASSERT_EQ(result.valid_streams.size(), 1u);
  EXPECT_EQ(result.valid_streams[0].size(), 6u);
  EXPECT_EQ(result.valid_streams[0].dominant_ttl_delta(), 2);
  // The record parsed without a transport header.
  EXPECT_EQ(result.records[0].pkt.udp(), nullptr);
}

// Different fragments of the same datagram share the IP ID but differ in
// offset: they must NOT be treated as replicas of each other.
TEST(EdgeCases, DistinctFragmentsAreNotReplicas) {
  net::Trace trace("frags2", 0);
  for (int i = 0; i < 4; ++i) {
    auto pkt = net::make_udp_packet(Ipv4Addr(198, 51, 100, 1),
                                    Ipv4Addr(203, 0, 113, 9), 1000, 2000, 64,
                                    static_cast<std::uint8_t>(60 - 2 * i), 77);
    pkt.ip.fragment_offset = static_cast<std::uint16_t>(185 * (i + 1));
    pkt.ip.more_fragments = true;
    pkt.ip.checksum = pkt.ip.compute_checksum();
    trace.add(i * net::kMillisecond, pkt, pkt.ip.total_length);
  }
  const auto result = core::detect_loops(trace);
  EXPECT_TRUE(result.raw_streams.empty());
}

// Restoring a failed link triggers a second convergence wave; traffic must
// return to the direct path afterwards.
TEST(EdgeCases, LinkRestorationReconverges) {
  routing::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto direct = topo.add_link(a, c, net::kMillisecond, 1e9, 100, 1);
  topo.add_link(a, b, net::kMillisecond, 1e9, 100, 5);
  topo.add_link(b, c, net::kMillisecond, 1e9, 100, 5);

  sim::Network network(topo, 2, {});
  const auto prefix = *net::Prefix::parse("203.0.113.0/24");
  network.attach_external_route({prefix, {c}});
  network.install_all_routes();
  const auto tap = network.add_tap(direct, a, "tap", 0);

  network.fail_link(direct, 5 * net::kSecond);
  network.restore_link(direct, 20 * net::kSecond);

  auto probe = [&](net::TimeNs t, std::uint16_t id) {
    return network.inject(
        net::make_udp_packet(Ipv4Addr(10, 255, 0, 0), Ipv4Addr(203, 0, 113, 1),
                             1, 2, 10, 64, id),
        60, a, t);
  };
  probe(net::kSecond, 1);               // before failure: direct
  const auto mid = probe(12 * net::kSecond, 2);   // during: via b
  const auto late = probe(60 * net::kSecond, 3);  // after restore: direct
  network.run_all();

  EXPECT_EQ(network.fates().at(mid).kind, sim::FateKind::delivered);
  EXPECT_EQ(network.fates().at(late).kind, sim::FateKind::delivered);
  // Tap on the direct link saw the first and third probes only.
  EXPECT_EQ(network.tap_trace(tap).size(), 2u);
  // The control log recorded both waves.
  int downs = 0, ups = 0;
  for (const auto& ev : network.control_log()) {
    if (ev.kind == sim::ControlEvent::Kind::link_down) ++downs;
    if (ev.kind == sim::ControlEvent::Kind::link_up) ++ups;
  }
  EXPECT_EQ(downs, 1);
  EXPECT_EQ(ups, 1);
}

// Scenario 4's equal-cost construction: steady-state traffic crosses
// X->M->Y (each hop decrements TTL once more than the direct path would).
TEST(EdgeCases, TransitChainCarriesSteadyTraffic) {
  auto spec = scenarios::backbone_spec(4);
  spec.duration = 5 * net::kSecond;
  spec.igp_events = 0;
  spec.bgp_events = 0;
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);
  // Tap is X->M; with no failures it must carry the bulk of traffic.
  EXPECT_GT(run->trace().size(), 1000u);
  EXPECT_EQ(run->network->stats().loop_crossings, 0u);
}

// Multicast-range destinations route like the attached 224.0.0.0/4 prefix.
TEST(EdgeCases, MulticastRangeTrafficIsDelivered) {
  routing::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, net::kMillisecond, 1e9, 100, 1);
  sim::Network network(topo, 3, {});
  network.attach_external_route(
      {net::Prefix::of(Ipv4Addr(224, 0, 0, 0), 4), {b}});
  network.install_all_routes();
  const auto id = network.inject(
      net::make_udp_packet(Ipv4Addr(10, 255, 0, 0), Ipv4Addr(239, 1, 2, 3), 1,
                           2, 100, 32, 9),
      150, a, 0);
  network.run_all();
  EXPECT_EQ(network.fates().at(id).kind, sim::FateKind::delivered);
  EXPECT_EQ(network.fates().at(id).final_node, b);
}

// A capture with mixed snaplens (some full 40-byte, some IP-header-only)
// still detects loops among the fully-captured packets and never confuses
// short and long captures of different packets.
TEST(EdgeCases, MixedSnaplenCaptures) {
  net::Trace trace("short", 0);
  std::array<std::byte, net::kMaxHeaderBytes> buf{};
  for (int i = 0; i < 5; ++i) {
    const auto pkt = net::make_udp_packet(
        Ipv4Addr(198, 51, 100, 1), Ipv4Addr(203, 0, 113, 9), 1000, 2000, 64,
        static_cast<std::uint8_t>(60 - 2 * i), 42);
    const auto n = net::serialize_packet(pkt, buf);
    // Capture only the IP header for odd replicas.
    const std::size_t cap = (i % 2) ? net::kIpv4HeaderSize : n;
    trace.add(i * net::kMillisecond,
              std::span<const std::byte>(buf.data(), cap),
              pkt.ip.total_length);
  }
  const auto result = core::detect_loops(trace);
  // Two interleaved key-groups (20-byte captures vs 28-byte captures) each
  // form their own stream; the 3-element one survives validation.
  ASSERT_EQ(result.valid_streams.size(), 1u);
  EXPECT_EQ(result.valid_streams[0].size(), 3u);
  EXPECT_EQ(result.valid_streams[0].dominant_ttl_delta(), 4);
}

}  // namespace
}  // namespace rloop
