// Overload-governor tests: tier walk under sustained pressure, hysteresis
// (hold before stepping down, mid-band resets the calm streak), the
// alloc-failure jump, transition accounting — plus the detector-side
// suspect-exempt sampling that tier 3 switches on.
#include "daemon/governor.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/streaming_detector.h"
#include "net/packet.h"
#include "telemetry/registry.h"
#include "trace_builder.h"

namespace rloop::daemon {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

GovernorConfig small_config() {
  GovernorConfig cfg;
  cfg.hold_epochs = 3;  // short hold keeps the tests compact
  return cfg;
}

TEST(Governor, WalksUpOneTierPerOverloadedEpoch) {
  OverloadGovernor gov(small_config());
  EXPECT_EQ(gov.tier(), DegradeTier::normal);

  const std::vector<DegradeTier> expected = {
      DegradeTier::shed_observability, DegradeTier::widen_batching,
      DegradeTier::sample_suspects, DegradeTier::drop_newest,
      DegradeTier::drop_newest};  // saturates at the top tier
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(gov.on_epoch(90, 100), expected[i]) << "epoch " << i;
  }
  EXPECT_EQ(gov.escalations(), 4u);
  EXPECT_EQ(gov.deescalations(), 0u);
}

TEST(Governor, HysteresisHoldsBeforeSteppingDown) {
  OverloadGovernor gov(small_config());
  gov.on_epoch(90, 100);
  gov.on_epoch(90, 100);
  ASSERT_EQ(gov.tier(), DegradeTier::widen_batching);

  // Calm epochs below exit_occupancy: the tier must hold for
  // hold_epochs - 1 epochs and step down exactly one tier on the third.
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::widen_batching);
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::widen_batching);
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::shed_observability);
  // The streak restarts per step: another full hold to reach normal.
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::shed_observability);
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::shed_observability);
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::normal);
  EXPECT_EQ(gov.deescalations(), 2u);
}

TEST(Governor, MidBandOccupancyResetsTheCalmStreak) {
  OverloadGovernor gov(small_config());
  gov.on_epoch(90, 100);
  ASSERT_EQ(gov.tier(), DegradeTier::shed_observability);

  gov.on_epoch(10, 100);
  gov.on_epoch(10, 100);
  // Mid-band (between exit and enter): neither escalates nor counts as calm.
  EXPECT_EQ(gov.on_epoch(50, 100), DegradeTier::shed_observability);
  // The calm streak starts over: two calm epochs are not enough...
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::shed_observability);
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::shed_observability);
  // ...the third is.
  EXPECT_EQ(gov.on_epoch(10, 100), DegradeTier::normal);
}

TEST(Governor, BoundaryOccupanciesFollowTheConfiguredThresholds) {
  OverloadGovernor gov(small_config());  // enter 0.75, exit 0.30
  // Exactly at enter_occupancy escalates; just below does not.
  EXPECT_EQ(gov.on_epoch(74, 100), DegradeTier::normal);
  EXPECT_EQ(gov.on_epoch(75, 100), DegradeTier::shed_observability);
  // Exactly at exit_occupancy counts as calm.
  gov.on_epoch(30, 100);
  gov.on_epoch(30, 100);
  EXPECT_EQ(gov.on_epoch(30, 100), DegradeTier::normal);
}

TEST(Governor, ZeroCapacityIsZeroPressure) {
  OverloadGovernor gov(small_config());
  gov.on_epoch(90, 100);
  ASSERT_EQ(gov.tier(), DegradeTier::shed_observability);
  // Inline mode (no ring): capacity 0 reads as occupancy 0 — calm.
  gov.on_epoch(0, 0);
  gov.on_epoch(0, 0);
  EXPECT_EQ(gov.on_epoch(0, 0), DegradeTier::normal);
}

TEST(Governor, AllocFailureJumpsStraightToSampling) {
  OverloadGovernor gov(small_config());
  EXPECT_EQ(gov.on_alloc_failure(), DegradeTier::sample_suspects);
  EXPECT_EQ(gov.alloc_failures(), 1u);
  EXPECT_EQ(gov.escalations(), 1u);

  // Already above sampling: the jump never de-escalates.
  OverloadGovernor high(small_config());
  for (int i = 0; i < 4; ++i) high.on_epoch(100, 100);
  ASSERT_EQ(high.tier(), DegradeTier::drop_newest);
  EXPECT_EQ(high.on_alloc_failure(), DegradeTier::drop_newest);
  EXPECT_EQ(high.alloc_failures(), 1u);
}

TEST(Governor, TransitionsFireTheHookAndTelemetry) {
  telemetry::Registry reg;
  OverloadGovernor gov(small_config(), &reg);
  struct Transition {
    DegradeTier from, to;
    double occupancy;
  };
  std::vector<Transition> seen;
  gov.set_transition_hook([&](DegradeTier from, DegradeTier to, double occ) {
    seen.push_back({from, to, occ});
  });

  gov.on_epoch(90, 100);
  for (int i = 0; i < 3; ++i) gov.on_epoch(10, 100);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].from, DegradeTier::normal);
  EXPECT_EQ(seen[0].to, DegradeTier::shed_observability);
  EXPECT_DOUBLE_EQ(seen[0].occupancy, 0.9);
  EXPECT_EQ(seen[1].from, DegradeTier::shed_observability);
  EXPECT_EQ(seen[1].to, DegradeTier::normal);
  EXPECT_DOUBLE_EQ(seen[1].occupancy, 0.1);

  EXPECT_EQ(reg.counter("rloop_daemon_degrade_escalations_total")->value(),
            1u);
  EXPECT_EQ(reg.counter("rloop_daemon_degrade_deescalations_total")->value(),
            1u);
  EXPECT_EQ(reg.gauge("rloop_daemon_degrade_tier")->value(), 0);
}

TEST(Governor, TierNamesAreStable) {
  EXPECT_STREQ(degrade_tier_name(DegradeTier::normal), "normal");
  EXPECT_STREQ(degrade_tier_name(DegradeTier::shed_observability),
               "shed_observability");
  EXPECT_STREQ(degrade_tier_name(DegradeTier::widen_batching),
               "widen_batching");
  EXPECT_STREQ(degrade_tier_name(DegradeTier::sample_suspects),
               "sample_suspects");
  EXPECT_STREQ(degrade_tier_name(DegradeTier::drop_newest), "drop_newest");
}

// --- tier-3 mechanics in the detector ---------------------------------------

TEST(Governor, SamplingDecimatesNonSuspectTraffic) {
  core::StreamingDetector detector({}, nullptr);
  detector.set_sample_keep_one_in(4);

  TraceBuilder builder;
  for (int i = 0; i < 1000; ++i) {
    builder.packet(i * net::kMicrosecond,
                   Ipv4Addr(10, static_cast<std::uint8_t>(i >> 8),
                            static_cast<std::uint8_t>(i), 1),
                   64, static_cast<std::uint16_t>(i));
  }
  for (const auto& rec : builder.trace().records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }

  EXPECT_EQ(detector.sampled_dropped(), 750u) << "keep 1-in-4 exactly";
  EXPECT_LE(detector.open_entries(), 250u);
}

TEST(Governor, SuspectPrefixesAreExemptFromSampling) {
  std::vector<core::LoopAlert> alerts;
  core::StreamingDetector detector(
      {}, [&](const core::LoopAlert& a) { alerts.push_back(a); });

  // Two replicas at full fidelity make the /24 a suspect...
  const Ipv4Addr dst(203, 0, 113, 10);
  TraceBuilder head;
  head.replica_stream(0, dst, 60, 7, 2, 2, net::kMillisecond);
  for (const auto& rec : head.trace().records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }
  ASSERT_TRUE(alerts.empty());

  // ...so under brutal sampling every further replica still gets through
  // and the alert fires with an exact replica count.
  detector.set_sample_keep_one_in(1'000'000);
  TraceBuilder tail;
  tail.replica_stream(2 * net::kMillisecond, dst, 56, 7, 4, 2,
                      net::kMillisecond);
  for (const auto& rec : tail.trace().records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }

  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts.front().prefix24, net::Prefix::slash24(dst));
  EXPECT_EQ(alerts.front().replicas, 3u);
  EXPECT_EQ(detector.sampled_dropped(), 0u)
      << "suspect traffic must never be sampled away";

  // Full fidelity restored: 0 (or 1) disables the decimator.
  detector.set_sample_keep_one_in(0);
  TraceBuilder noise;
  noise.packet(10 * net::kMillisecond, Ipv4Addr(10, 1, 2, 3), 64, 99);
  for (const auto& rec : noise.trace().records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }
  EXPECT_EQ(detector.sampled_dropped(), 0u);
}

}  // namespace
}  // namespace rloop::daemon
