#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <array>

namespace rloop::net {
namespace {

TEST(Ipv4Addr, FormatsDottedQuad) {
  EXPECT_EQ(Ipv4Addr(192, 168, 0, 1).to_string(), "192.168.0.1");
  EXPECT_EQ(Ipv4Addr(0, 0, 0, 0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).to_string(), "255.255.255.255");
}

struct AddrCase {
  const char* text;
  bool valid;
  std::uint32_t value;
};

class AddrParse : public ::testing::TestWithParam<AddrCase> {};

TEST_P(AddrParse, ParsesOrRejects) {
  const auto& c = GetParam();
  const auto parsed = Ipv4Addr::parse(c.text);
  if (c.valid) {
    ASSERT_TRUE(parsed.has_value()) << c.text;
    EXPECT_EQ(parsed->value, c.value);
    EXPECT_EQ(parsed->to_string(), c.text);  // canonical roundtrip
  } else {
    EXPECT_FALSE(parsed.has_value()) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AddrParse,
    ::testing::Values(
        AddrCase{"1.2.3.4", true, 0x01020304},
        AddrCase{"0.0.0.0", true, 0},
        AddrCase{"255.255.255.255", true, 0xffffffff},
        AddrCase{"10.255.0.7", true, 0x0aff0007},
        AddrCase{"256.1.1.1", false, 0}, AddrCase{"1.2.3", false, 0},
        AddrCase{"1.2.3.4.5", false, 0}, AddrCase{"", false, 0},
        AddrCase{"a.b.c.d", false, 0}, AddrCase{"1..2.3", false, 0},
        AddrCase{"1.2.3.4 ", false, 0}, AddrCase{"0001.2.3.4", false, 0},
        AddrCase{"-1.2.3.4", false, 0}));

TEST(Ipv4Header, SerializeParseRoundtrip) {
  Ipv4Header h;
  h.tos = 0xb8;
  h.total_length = 1480;
  h.id = 0xbeef;
  h.dont_fragment = true;
  h.more_fragments = false;
  h.fragment_offset = 0;
  h.ttl = 61;
  h.protocol = 6;
  h.src = Ipv4Addr(198, 51, 100, 7);
  h.dst = Ipv4Addr(203, 0, 113, 99);
  h.checksum = h.compute_checksum();

  std::array<std::byte, kIpv4HeaderSize> buf{};
  h.serialize(buf);
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
  EXPECT_TRUE(parsed->checksum_valid());
}

TEST(Ipv4Header, FragmentFieldsRoundtrip) {
  Ipv4Header h;
  h.total_length = 60;
  h.more_fragments = true;
  h.fragment_offset = 0x1abc;
  h.ttl = 10;
  h.protocol = 17;

  std::array<std::byte, kIpv4HeaderSize> buf{};
  h.serialize(buf);
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->more_fragments);
  EXPECT_FALSE(parsed->dont_fragment);
  EXPECT_EQ(parsed->fragment_offset, 0x1abc);
}

TEST(Ipv4Header, RejectsShortBuffer) {
  std::array<std::byte, kIpv4HeaderSize - 1> buf{};
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, RejectsWrongVersion) {
  std::array<std::byte, kIpv4HeaderSize> buf{};
  buf[0] = std::byte{0x65};  // version 6
  buf[2] = std::byte{0};
  buf[3] = std::byte{20};
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, RejectsIhlBelowFive) {
  std::array<std::byte, kIpv4HeaderSize> buf{};
  buf[0] = std::byte{0x44};  // version 4, IHL 4
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, RejectsTotalLengthBelowHeader) {
  Ipv4Header h;
  h.total_length = 10;  // < 20
  h.ttl = 1;
  std::array<std::byte, kIpv4HeaderSize> buf{};
  h.serialize(buf);
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, ParsesHeaderWithOptionsWhenCaptured) {
  // IHL 6 (24 bytes). Build manually.
  std::array<std::byte, 24> buf{};
  buf[0] = std::byte{0x46};
  buf[2] = std::byte{0};
  buf[3] = std::byte{40};  // total length 40
  buf[8] = std::byte{5};   // ttl
  buf[9] = std::byte{6};   // proto
  std::size_t header_len = 0;
  const auto parsed = Ipv4Header::parse(buf, &header_len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(header_len, 24u);
  EXPECT_EQ(parsed->ttl, 5);
}

TEST(Ipv4Header, RejectsOptionsBeyondCapture) {
  // IHL 8 (32 bytes) but only 20 captured.
  std::array<std::byte, kIpv4HeaderSize> buf{};
  buf[0] = std::byte{0x48};
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, ChecksumDetectsCorruption) {
  Ipv4Header h;
  h.total_length = 40;
  h.ttl = 64;
  h.protocol = 6;
  h.src = Ipv4Addr(1, 2, 3, 4);
  h.dst = Ipv4Addr(5, 6, 7, 8);
  h.checksum = h.compute_checksum();
  EXPECT_TRUE(h.checksum_valid());
  h.ttl = 63;  // field changed without checksum update
  EXPECT_FALSE(h.checksum_valid());
}

}  // namespace
}  // namespace rloop::net
