#include "core/stream_merger.h"

#include <gtest/gtest.h>

#include "core/stream_validator.h"
#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

const Ipv4Addr kDst(203, 0, 113, 10);
const Ipv4Addr kSamePrefix(203, 0, 113, 77);
const Ipv4Addr kOtherDst(198, 18, 5, 20);

std::vector<RoutingLoop> run_pipeline(TraceBuilder& builder,
                                      MergerConfig cfg = {}) {
  const auto records = parse_trace(builder.trace());
  const auto raw = ReplicaDetector(ReplicaDetectorConfig{}).detect(builder.trace(), records);
  const auto valid = StreamValidator(ValidatorConfig{}).validate(records, raw);
  return StreamMerger(cfg).merge(records, valid);
}

TEST(StreamMerger, SingleStreamSingleLoop) {
  TraceBuilder builder;
  builder.replica_stream(1000, kDst, 60, 7, 5, 2, net::kMillisecond);
  const auto loops = run_pipeline(builder);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].prefix24, net::Prefix::slash24(kDst));
  EXPECT_EQ(loops[0].stream_count(), 1u);
  EXPECT_EQ(loops[0].replica_count, 5u);
  EXPECT_EQ(loops[0].ttl_delta, 2);
}

TEST(StreamMerger, OverlappingStreamsMerge) {
  TraceBuilder builder;
  // Two packets looping concurrently to the same /24.
  for (int i = 0; i < 5; ++i) {
    const auto t = i * 2 * net::kMillisecond;
    builder.packet(t, kDst, static_cast<std::uint8_t>(60 - 2 * i), 7);
    builder.packet(t + net::kMillisecond, kSamePrefix,
                   static_cast<std::uint8_t>(58 - 2 * i), 9);
  }
  const auto loops = run_pipeline(builder);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].stream_count(), 2u);
  EXPECT_EQ(loops[0].replica_count, 10u);
}

TEST(StreamMerger, NearbyStreamsMergeAcrossQuietGap) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 5, 2, net::kMillisecond);
  // 20 s of silence on this prefix, then the loop's next victim.
  builder.replica_stream(20 * net::kSecond, kSamePrefix, 60, 9, 5, 2,
                         net::kMillisecond);
  const auto loops = run_pipeline(builder);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].stream_count(), 2u);
  EXPECT_GE(loops[0].duration(), 20 * net::kSecond);
}

TEST(StreamMerger, HealthyPacketInGapPreventsMerge) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 5, 2, net::kMillisecond);
  // The prefix demonstrably worked in between.
  builder.packet(10 * net::kSecond, kSamePrefix, 64, 50);
  builder.replica_stream(20 * net::kSecond, kSamePrefix, 60, 9, 5, 2,
                         net::kMillisecond);
  const auto loops = run_pipeline(builder);
  EXPECT_EQ(loops.size(), 2u);
}

TEST(StreamMerger, GapBeyondWindowPreventsMerge) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 5, 2, net::kMillisecond);
  builder.replica_stream(90 * net::kSecond, kSamePrefix, 60, 9, 5, 2,
                         net::kMillisecond);
  const auto loops = run_pipeline(builder);  // default 60 s merge gap
  EXPECT_EQ(loops.size(), 2u);

  MergerConfig wide;
  wide.merge_gap = 2 * net::kMinute;
  EXPECT_EQ(run_pipeline(builder, wide).size(), 1u);
}

TEST(StreamMerger, DifferentPrefixesNeverMerge) {
  TraceBuilder builder;
  builder.replica_stream(0, kDst, 60, 7, 5, 2, net::kMillisecond);
  builder.replica_stream(100, kOtherDst, 60, 9, 5, 2, net::kMillisecond);
  const auto loops = run_pipeline(builder);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_NE(loops[0].prefix24, loops[1].prefix24);
}

TEST(StreamMerger, LoopTtlDeltaIsModeOfStreams) {
  TraceBuilder builder;
  // Three overlapping streams: deltas 2, 2, 3.
  builder.replica_stream(0, kDst, 60, 1, 4, 2, net::kMillisecond);
  builder.replica_stream(100, Ipv4Addr(203, 0, 113, 11), 60, 2, 4, 2,
                         net::kMillisecond);
  builder.replica_stream(200, Ipv4Addr(203, 0, 113, 12), 60, 3, 4, 3,
                         net::kMillisecond);
  const auto loops = run_pipeline(builder);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].ttl_delta, 2);
}

TEST(StreamMerger, LoopsSortedByPrefixThenTime) {
  TraceBuilder builder;
  builder.replica_stream(0, kOtherDst, 60, 1, 4, 2, net::kMillisecond);
  builder.replica_stream(net::kSecond, kDst, 60, 2, 4, 2, net::kMillisecond);
  builder.packet(100 * net::kSecond, kOtherDst, 64, 99);  // break any merge
  builder.replica_stream(200 * net::kSecond, kOtherDst, 60, 3, 4, 2,
                         net::kMillisecond);
  const auto loops = run_pipeline(builder);
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_LE(loops[0].prefix24, loops[1].prefix24);
  EXPECT_LE(loops[1].prefix24, loops[2].prefix24);
}

TEST(StreamMerger, EmptyInputEmptyOutput) {
  TraceBuilder builder;
  builder.packet(0, kDst, 64, 1);
  EXPECT_TRUE(run_pipeline(builder).empty());
}

}  // namespace
}  // namespace rloop::core
