#include "telemetry/decision_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/loop_detector.h"
#include "core/streaming_detector.h"
#include "trace_builder.h"

namespace rloop::telemetry {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

const net::Prefix kPrefix = net::Prefix::slash24(Ipv4Addr(10, 1, 2, 0));

// The journaled reason sequence for one /24, as strings for readable diffs.
std::vector<std::string> reason_names(const DecisionLog& journal,
                                      const net::Prefix& prefix) {
  std::vector<std::string> out;
  for (const DecisionKind kind : journal.reasons(prefix)) {
    out.emplace_back(decision_reason(kind));
  }
  return out;
}

core::LoopDetectorConfig config_with(DecisionLog* journal, bool parallel) {
  core::LoopDetectorConfig config;
  config.journal = journal;
  if (parallel) {
    config.parallel.num_threads = 4;
    config.parallel.shard_bits = 2;
  }
  return config;
}

// --- end-to-end reason sequences, serial and parallel ----------------------
// Each paper rejection reason fires exactly once on a purpose-built trace,
// and the causal chain around it is pinned.

class DecisionReasonTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, DecisionReasonTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "parallel" : "serial";
                         });

TEST_P(DecisionReasonTest, MinReplicasFiresExactlyOnce) {
  TraceBuilder builder;
  // A two-element stream: emitted by the detector, rejected by validation
  // condition 1.
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), /*ttl0=*/60,
                         /*ip_id=*/7, /*count=*/2, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  DecisionLog journal;
  const auto result = core::detect_loops(
      builder.trace(), config_with(&journal, GetParam()));
  EXPECT_TRUE(result.loops.empty());
  EXPECT_EQ(result.validation.rejected_too_small, 1u);

  const std::vector<std::string> expected = {
      "replica_accepted", "stream_emitted", "min_replicas"};
  EXPECT_EQ(reason_names(journal, kPrefix), expected);
}

TEST_P(DecisionReasonTest, NonloopedPacketInWindowFiresExactlyOnce) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), /*ttl0=*/60,
                         /*ip_id=*/7, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  // A healthy (never-replicated) packet to the same /24 inside the stream's
  // lifetime refutes the loop hypothesis.
  builder.packet(net::kSecond + 15 * net::kMillisecond, Ipv4Addr(10, 1, 2, 99),
                 /*ttl=*/64, /*ip_id=*/99);
  DecisionLog journal;
  const auto result = core::detect_loops(
      builder.trace(), config_with(&journal, GetParam()));
  EXPECT_TRUE(result.loops.empty());
  EXPECT_EQ(result.validation.rejected_prefix_conflict, 1u);

  const std::vector<std::string> expected = {
      "replica_accepted", "replica_accepted", "replica_accepted",
      "stream_emitted", "nonlooped_packet_in_window"};
  EXPECT_EQ(reason_names(journal, kPrefix), expected);

  // The evidence is the refuting packet's timestamp.
  bool found = false;
  for (const auto& ev : journal.events_for(kPrefix)) {
    if (ev.kind == DecisionKind::stream_rejected_nonlooped) {
      found = true;
      EXPECT_EQ(ev.ts, net::kSecond + 30 * net::kMillisecond);  // stream end
      EXPECT_EQ(ev.detail, net::kSecond + 15 * net::kMillisecond);
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(DecisionReasonTest, MergeGapExceededFiresExactlyOnce) {
  TraceBuilder builder;
  // Two validated streams to one /24, separated by far more than the 60 s
  // merge gap: two loops, one split decision.
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), /*ttl0=*/60,
                         /*ip_id=*/7, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  builder.replica_stream(120 * net::kSecond, Ipv4Addr(10, 1, 2, 3),
                         /*ttl0=*/60, /*ip_id=*/8, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  DecisionLog journal;
  const auto result = core::detect_loops(
      builder.trace(), config_with(&journal, GetParam()));
  EXPECT_EQ(result.loops.size(), 2u);

  const std::vector<std::string> expected = {
      // stream 1
      "replica_accepted", "replica_accepted", "replica_accepted",
      "stream_emitted", "validated", "loop_emitted",
      // stream 2
      "replica_accepted", "replica_accepted", "replica_accepted",
      "stream_emitted", "validated", "merge_gap_exceeded", "loop_emitted"};
  EXPECT_EQ(reason_names(journal, kPrefix), expected);
}

TEST_P(DecisionReasonTest, HealthyPacketInGapSplitsTheLoop) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), /*ttl0=*/60,
                         /*ip_id=*/7, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  builder.replica_stream(20 * net::kSecond, Ipv4Addr(10, 1, 2, 3),
                         /*ttl0=*/60, /*ip_id=*/8, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  // Gap is ~19 s < 60 s, but forwarding was demonstrably healthy in between.
  builder.packet(10 * net::kSecond, Ipv4Addr(10, 1, 2, 99), /*ttl=*/64,
                 /*ip_id=*/99);
  DecisionLog journal;
  const auto result = core::detect_loops(
      builder.trace(), config_with(&journal, GetParam()));
  EXPECT_EQ(result.loops.size(), 2u);

  std::size_t splits = 0;
  for (const auto& ev : journal.events_for(kPrefix)) {
    if (ev.kind == DecisionKind::loop_split_healthy) {
      ++splits;
      EXPECT_EQ(ev.detail2, 10 * net::kSecond);  // the refuting packet
    }
  }
  EXPECT_EQ(splits, 1u);
}

TEST_P(DecisionReasonTest, MergedStreamsJournalLoopExtended) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), /*ttl0=*/60,
                         /*ip_id=*/7, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  builder.replica_stream(5 * net::kSecond, Ipv4Addr(10, 1, 2, 3),
                         /*ttl0=*/60, /*ip_id=*/8, /*count=*/4, /*delta=*/2,
                         /*spacing=*/10 * net::kMillisecond);
  DecisionLog journal;
  const auto result = core::detect_loops(
      builder.trace(), config_with(&journal, GetParam()));
  ASSERT_EQ(result.loops.size(), 1u);
  EXPECT_EQ(result.loops[0].stream_count(), 2u);

  const auto reasons = reason_names(journal, kPrefix);
  EXPECT_EQ(std::count(reasons.begin(), reasons.end(), "merged"), 1);
  EXPECT_EQ(std::count(reasons.begin(), reasons.end(), "loop_emitted"), 1);
}

// --- serial/parallel journal determinism -----------------------------------

TEST(DecisionLogDeterminism, ExplainIsIdenticalSerialAndParallel) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), 60, 7, 4, 2,
                         10 * net::kMillisecond);
  builder.replica_stream(120 * net::kSecond, Ipv4Addr(10, 1, 2, 3), 60, 8, 4,
                         2, 10 * net::kMillisecond);
  builder.replica_stream(2 * net::kSecond, Ipv4Addr(192, 0, 2, 1), 60, 9, 2,
                         2, 10 * net::kMillisecond);

  DecisionLog serial_journal;
  DecisionLog parallel_journal;
  (void)core::detect_loops(builder.trace(), config_with(&serial_journal, false));
  (void)core::detect_loops(builder.trace(),
                           config_with(&parallel_journal, true));

  for (const auto& prefix :
       {kPrefix, net::Prefix::slash24(Ipv4Addr(192, 0, 2, 0))}) {
    EXPECT_EQ(serial_journal.explain(prefix), parallel_journal.explain(prefix));
  }
  EXPECT_EQ(serial_journal.dump(), parallel_journal.dump());
}

// --- explain() rendering ----------------------------------------------------

TEST(DecisionLogExplain, RendersCausalChainWithVerdict) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), 60, 7, 4, 2,
                         10 * net::kMillisecond);
  DecisionLog journal;
  (void)core::detect_loops(builder.trace(), config_with(&journal, false));

  const std::string chain = journal.explain(kPrefix);
  EXPECT_NE(chain.find("decision journal for 10.1.2.0/24"), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("replica_accepted"), std::string::npos);
  EXPECT_NE(chain.find("validated"), std::string::npos);
  EXPECT_NE(chain.find("loop_emitted"), std::string::npos);
  EXPECT_NE(chain.find("verdict: 1 loop(s) emitted, 0 stream(s) rejected"),
            std::string::npos)
      << chain;
  // A prefix with no events renders an empty-but-valid chain.
  const std::string empty =
      journal.explain(net::Prefix::slash24(Ipv4Addr(203, 0, 113, 0)));
  EXPECT_NE(empty.find("0 event(s)"), std::string::npos) << empty;
}

// --- flight-recorder behavior -----------------------------------------------

TEST(DecisionLogFlightRecorder, AutoDumpFiresOnValidationReject) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), 60, 7, 2, 2,
                         10 * net::kMillisecond);
  std::vector<std::string> dumps;
  DecisionLog::Options options;
  options.dump_on_reject = true;
  options.dump_sink = [&](const std::string& chain) { dumps.push_back(chain); };
  DecisionLog journal(std::move(options));

  core::LoopDetectorConfig config;
  config.journal = &journal;
  (void)core::detect_loops(builder.trace(), config);

  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("min_replicas"), std::string::npos) << dumps[0];
  EXPECT_NE(dumps[0].find("10.1.2.0/24"), std::string::npos);
}

TEST(DecisionLogFlightRecorder, RingOverwritesOldestAndCounts) {
  DecisionLog::Options options;
  options.capacity = 4;
  DecisionLog journal(std::move(options));
  for (std::uint32_t i = 0; i < 10; ++i) {
    journal.record({.kind = DecisionKind::replica_accepted,
                    .dst24 = kPrefix,
                    .ts = static_cast<net::TimeNs>(i),
                    .record_index = i});
  }
  EXPECT_EQ(journal.recorded(), 10u);
  EXPECT_EQ(journal.overwritten(), 6u);
  EXPECT_EQ(journal.capacity(), 4u);
  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained is event 6; snapshot is oldest -> newest.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].record_index, 6u + i);
  }
}

// --- streaming detector ------------------------------------------------------

TEST(StreamingJournal, AlertRaisedThenHolddownSuppressed) {
  TraceBuilder builder;
  builder.replica_stream(net::kSecond, Ipv4Addr(10, 1, 2, 3), 60, 7,
                         /*count=*/5, /*delta=*/2, 10 * net::kMillisecond);
  DecisionLog journal;
  core::StreamingDetector detector({}, nullptr, nullptr, &journal);
  for (const auto& rec : builder.trace().records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }
  EXPECT_EQ(detector.alerts_raised(), 1u);

  const auto reasons = reason_names(journal, kPrefix);
  EXPECT_EQ(std::count(reasons.begin(), reasons.end(), "alert_raised"), 1);
  EXPECT_EQ(std::count(reasons.begin(), reasons.end(), "alert_holddown"), 2);
}

}  // namespace
}  // namespace rloop::telemetry
