// Test helper: a minimal strict JSON syntax validator.
//
// The repo's exporters emit JSON by hand (no third-party JSON dependency is
// allowed), so tests validate the output with this equally dependency-free
// recursive-descent checker. It verifies syntax only — objects, arrays,
// strings with escapes, numbers, true/false/null, and that the whole input
// is consumed — which is exactly what "loads in Perfetto / python json"
// requires.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace rloop::testing {

namespace json_detail {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("bad literal");
    }
    pos += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else if (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    } else {
      return fail("expected digit");
    }
    if (eat('.')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("expected fraction digit");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("expected exponent digit");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    return pos > start;
  }

  bool value(int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("expected value");
    switch (text[pos]) {
      case '{': {
        ++pos;
        skip_ws();
        if (eat('}')) return true;
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!eat(':')) return fail("expected ':'");
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eat(',')) continue;
          if (eat('}')) return true;
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (eat(']')) return true;
        for (;;) {
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eat(',')) continue;
          if (eat(']')) return true;
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
};

}  // namespace json_detail

// True when `text` is one complete, syntactically valid JSON value. On
// failure, `*error` (optional) receives a short description with the offset.
inline bool is_valid_json(std::string_view text, std::string* error = nullptr) {
  json_detail::Parser p{text};
  bool ok = p.value(0);
  if (ok) {
    p.skip_ws();
    if (p.pos != p.text.size()) {
      ok = p.fail("trailing content");
    }
  }
  if (!ok && error) *error = p.error;
  return ok;
}

}  // namespace rloop::testing
