#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace rloop::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(300, [&] { order.push_back(3); });
  queue.schedule(100, [&] { order.push_back(1); });
  queue.schedule(200, [&] { order.push_back(2); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 300);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(50, [&order, i] { order.push_back(i); });
  }
  queue.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(100, [&] { order.push_back(1); });
  queue.schedule(200, [&] { order.push_back(2); });
  queue.schedule(301, [&] { order.push_back(3); });
  queue.run_until(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.now(), 200);
  EXPECT_EQ(queue.pending(), 1u);
  queue.run_until(400);
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(queue.now(), 400);  // advances to the requested time
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) queue.schedule_in(10, chain);
  };
  queue.schedule(0, chain);
  queue.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(queue.now(), 40);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule(100, [] {});
  queue.run_all();
  EXPECT_THROW(queue.schedule(99, [] {}), std::invalid_argument);
  // Scheduling exactly at now() is allowed.
  queue.schedule(100, [] {});
  queue.run_all();
}

TEST(EventQueue, ScheduleAtNowRunsAfterCurrentEvent) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(10, [&] {
    order.push_back(1);
    queue.schedule(10, [&] { order.push_back(2); });
  });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace rloop::sim
