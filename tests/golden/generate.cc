// Regenerates the golden-trace fixture (golden_trace.pcap +
// golden_expected.json). Build and run the `golden_regen` target from the
// repo root ONLY when a detection-semantics change is intentional:
//
//   cmake --build build --target golden_regen
//   ./build/tests/golden_regen tests/golden
//
// The trace is a deliberately tiny Backbone-1 variant (fixed seed, a few
// seconds, reduced flow rate) chosen so the pcap stays under 50 KB while
// still containing real transient loops. The expected JSON is the serial
// pipeline's report over the pcap AS RE-READ from disk, so the fixture pins
// the full pcap -> parse -> detect -> validate -> merge -> report chain.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/loop_detector.h"
#include "core/report.h"
#include "net/pcap.h"
#include "scenarios/backbone.h"

using namespace rloop;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "tests/golden";

  auto spec = scenarios::backbone_spec(1);
  spec.duration = 16 * net::kSecond;
  spec.flows_per_second = 3.0;
  spec.igp_events = 1;
  spec.bgp_events = 8;
  spec.mrai_max = 8 * net::kSecond;
  spec.bgp_outage_mean = 4 * net::kSecond;
  spec.dst_prefix_count = 40;
  // Withdraw popular prefixes so the few active flows actually cross the
  // loops this tiny trace exists to pin.
  spec.withdraw_rank_lo = 0.0;
  spec.withdraw_rank_hi = 0.4;
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);

  const auto pcap_path = out_dir + "/golden_trace.pcap";
  net::write_pcap(run->trace(), pcap_path);

  // Detect over the re-read trace so the fixture covers pcap I/O exactly as
  // the test does.
  const auto trace = net::read_pcap(pcap_path);
  const auto result = core::detect_loops(trace);

  core::ReportOptions options;
  options.include_streams = true;
  options.trace_name = "golden";
  options.trace_epoch_unix_s = 0;
  std::ofstream json(out_dir + "/golden_expected.json", std::ios::binary);
  json << core::json_report(result, options);
  json.close();

  std::printf("golden fixture: %zu records, %zu raw streams, %zu valid, "
              "%zu loops -> %s\n",
              trace.size(), result.raw_streams.size(),
              result.valid_streams.size(), result.loops.size(),
              pcap_path.c_str());
  return result.loops.empty() ? 1 : 0;
}
