#include "net/transport.h"

#include <gtest/gtest.h>

#include <array>

namespace rloop::net {
namespace {

TEST(TcpHeader, SerializeParseRoundtrip) {
  TcpHeader t;
  t.src_port = 49152;
  t.dst_port = 443;
  t.seq = 0xdeadbeef;
  t.ack = 0x01020304;
  t.flags = kTcpSyn | kTcpAck;
  t.window = 29200;
  t.checksum = 0xabcd;
  t.urgent_pointer = 7;

  std::array<std::byte, kTcpHeaderSize> buf{};
  t.serialize(buf);
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(TcpHeader, FlagPredicates) {
  TcpHeader t;
  t.flags = kTcpSyn | kTcpAck;
  EXPECT_TRUE(t.has(kTcpSyn));
  EXPECT_TRUE(t.has(kTcpAck));
  EXPECT_FALSE(t.has(kTcpFin));
  EXPECT_FALSE(t.has(kTcpRst));
}

TEST(TcpHeader, RejectsShortBuffer) {
  std::array<std::byte, kTcpHeaderSize - 1> buf{};
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(TcpHeader, RejectsDataOffsetBelowFive) {
  std::array<std::byte, kTcpHeaderSize> buf{};
  buf[12] = std::byte{0x40};  // data offset 4
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(UdpHeader, SerializeParseRoundtrip) {
  UdpHeader u;
  u.src_port = 5353;
  u.dst_port = 53;
  u.length = 520;
  u.checksum = 0x1357;

  std::array<std::byte, kUdpHeaderSize> buf{};
  u.serialize(buf);
  const auto parsed = UdpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, u);
}

TEST(UdpHeader, RejectsLengthBelowHeader) {
  UdpHeader u;
  u.length = 7;
  std::array<std::byte, kUdpHeaderSize> buf{};
  u.serialize(buf);
  EXPECT_FALSE(UdpHeader::parse(buf).has_value());
}

TEST(IcmpHeader, SerializeParseRoundtrip) {
  IcmpHeader i;
  i.type = static_cast<std::uint8_t>(IcmpType::time_exceeded);
  i.code = 0;
  i.checksum = 0x9876;
  i.rest = 0x00450000;

  std::array<std::byte, kIcmpHeaderSize> buf{};
  i.serialize(buf);
  const auto parsed = IcmpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, i);
}

TEST(IcmpHeader, RejectsShortBuffer) {
  std::array<std::byte, kIcmpHeaderSize - 1> buf{};
  EXPECT_FALSE(IcmpHeader::parse(buf).has_value());
}

struct FlagsCase {
  std::uint8_t flags;
  const char* expected;
};

class TcpFlagsToString : public ::testing::TestWithParam<FlagsCase> {};

TEST_P(TcpFlagsToString, Formats) {
  EXPECT_EQ(tcp_flags_to_string(GetParam().flags), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TcpFlagsToString,
    ::testing::Values(FlagsCase{0, "none"}, FlagsCase{kTcpSyn, "SYN"},
                      FlagsCase{kTcpSyn | kTcpAck, "SYN|ACK"},
                      FlagsCase{kTcpFin | kTcpAck, "ACK|FIN"},
                      FlagsCase{kTcpRst, "RST"},
                      FlagsCase{kTcpPsh | kTcpAck | kTcpUrg, "ACK|PSH|URG"}));

}  // namespace
}  // namespace rloop::net
