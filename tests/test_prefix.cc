#include "net/prefix.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rloop::net {
namespace {

TEST(Prefix, OfMasksHostBits) {
  const auto p = Prefix::of(Ipv4Addr(10, 1, 2, 3), 24);
  EXPECT_EQ(p.addr, Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(p.len, 24);
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  const auto p = Prefix::of(Ipv4Addr(1, 2, 3, 4), 0);
  EXPECT_EQ(p.addr.value, 0u);
  EXPECT_TRUE(p.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(p.contains(Ipv4Addr(0, 0, 0, 0)));
}

TEST(Prefix, HostRoute) {
  const auto p = Prefix::of(Ipv4Addr(10, 0, 0, 1), 32);
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 0, 0, 1)));
  EXPECT_FALSE(p.contains(Ipv4Addr(10, 0, 0, 2)));
}

TEST(Prefix, ThrowsOnBadLength) {
  EXPECT_THROW(Prefix::of(Ipv4Addr{0}, 33), std::invalid_argument);
}

TEST(Prefix, Contains) {
  const auto p = Prefix::of(Ipv4Addr(192, 168, 4, 0), 22);
  EXPECT_TRUE(p.contains(Ipv4Addr(192, 168, 4, 1)));
  EXPECT_TRUE(p.contains(Ipv4Addr(192, 168, 7, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr(192, 168, 8, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr(192, 168, 3, 255)));
}

TEST(Prefix, Covers) {
  const auto p16 = Prefix::of(Ipv4Addr(10, 1, 0, 0), 16);
  const auto p24 = Prefix::of(Ipv4Addr(10, 1, 2, 0), 24);
  EXPECT_TRUE(p16.covers(p24));
  EXPECT_FALSE(p24.covers(p16));
  EXPECT_TRUE(p16.covers(p16));
  EXPECT_FALSE(p16.covers(Prefix::of(Ipv4Addr(10, 2, 0, 0), 24)));
}

TEST(Prefix, Slash24) {
  EXPECT_EQ(Prefix::slash24(Ipv4Addr(203, 0, 113, 77)),
            Prefix::of(Ipv4Addr(203, 0, 113, 0), 24));
}

struct ParseCase {
  const char* text;
  bool valid;
  const char* canonical;
};

class PrefixParse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(PrefixParse, ParsesOrRejects) {
  const auto& c = GetParam();
  const auto parsed = Prefix::parse(c.text);
  if (c.valid) {
    ASSERT_TRUE(parsed.has_value()) << c.text;
    EXPECT_EQ(parsed->to_string(), c.canonical);
  } else {
    EXPECT_FALSE(parsed.has_value()) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixParse,
    ::testing::Values(
        ParseCase{"10.0.0.0/8", true, "10.0.0.0/8"},
        ParseCase{"10.1.2.3/24", true, "10.1.2.0/24"},  // host bits masked
        ParseCase{"0.0.0.0/0", true, "0.0.0.0/0"},
        ParseCase{"255.255.255.255/32", true, "255.255.255.255/32"},
        ParseCase{"10.0.0.0/33", false, ""}, ParseCase{"10.0.0.0", false, ""},
        ParseCase{"10.0.0.0/", false, ""}, ParseCase{"/24", false, ""},
        ParseCase{"10.0.0.0/2a", false, ""},
        ParseCase{"300.0.0.0/8", false, ""}));

TEST(Prefix, OrderingIsDeterministic) {
  const auto a = Prefix::of(Ipv4Addr(10, 0, 0, 0), 8);
  const auto b = Prefix::of(Ipv4Addr(10, 0, 0, 0), 16);
  const auto c = Prefix::of(Ipv4Addr(11, 0, 0, 0), 8);
  EXPECT_LT(a, b);  // same addr, shorter length first
  EXPECT_LT(b, c);
}

TEST(Prefix, HashDistinguishesLengths) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 8));
  set.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 16));
  set.insert(Prefix::of(Ipv4Addr(10, 0, 0, 0), 24));
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace rloop::net
