#include "core/streaming_detector.h"

#include <gtest/gtest.h>

#include "core/loop_detector.h"
#include "telemetry/registry.h"
#include "trace_builder.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

struct Harness {
  std::vector<LoopAlert> alerts;
  StreamingDetector detector;

  explicit Harness(StreamingConfig cfg = {},
                   telemetry::Registry* registry = nullptr)
      : detector(
            cfg,
            [this](const LoopAlert& alert) { alerts.push_back(alert); },
            registry) {}

  void feed(const net::Trace& trace) {
    for (const auto& rec : trace.records()) {
      detector.on_packet(rec.ts, rec.bytes());
    }
  }
};

TEST(StreamingDetector, RaisesAlertAtThreshold) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  builder.replica_stream(1000, dst, 60, 7, 6, 2, net::kMillisecond);
  Harness harness;
  harness.feed(builder.trace());

  ASSERT_EQ(harness.alerts.size(), 1u);
  const auto& alert = harness.alerts.front();
  EXPECT_EQ(alert.prefix24, net::Prefix::slash24(dst));
  EXPECT_EQ(alert.replicas, 3u);  // fires at min_replicas, not at the end
  EXPECT_EQ(alert.ttl_delta, 2);
  EXPECT_EQ(alert.first_seen, 1000);
  EXPECT_EQ(alert.raised_at, 1000 + 2 * net::kMillisecond);
}

TEST(StreamingDetector, NoAlertBelowThreshold) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 10), 60, 7, 2, 2, 1000);
  Harness harness;
  harness.feed(builder.trace());
  EXPECT_TRUE(harness.alerts.empty());
}

TEST(StreamingDetector, NormalTrafficRaisesNothing) {
  TraceBuilder builder;
  for (int i = 0; i < 1000; ++i) {
    builder.packet(i * 1000, Ipv4Addr(203, 0, 113, 10), 64,
                   static_cast<std::uint16_t>(i));
  }
  Harness harness;
  harness.feed(builder.trace());
  EXPECT_TRUE(harness.alerts.empty());
  EXPECT_EQ(harness.detector.packets_seen(), 1000u);
}

TEST(StreamingDetector, HolddownSuppressesRepeatAlerts) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  // Two looped packets, 1 s apart: one prefix, within the hold-down.
  builder.replica_stream(0, dst, 60, 7, 10, 2, net::kMillisecond);
  builder.replica_stream(net::kSecond, dst, 60, 8, 10, 2, net::kMillisecond);
  // A third after the hold-down expires.
  builder.replica_stream(2 * net::kMinute, dst, 60, 9, 10, 2,
                         net::kMillisecond);
  Harness harness;
  harness.feed(builder.trace());
  EXPECT_EQ(harness.alerts.size(), 2u);
  EXPECT_EQ(harness.detector.alerts_raised(), 2u);
}

TEST(StreamingDetector, DistinctPrefixesAlertIndependently) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 10), 60, 7, 5, 2, 1000);
  builder.replica_stream(100, Ipv4Addr(198, 18, 0, 10), 60, 8, 5, 2, 1000);
  Harness harness;
  harness.feed(builder.trace());
  EXPECT_EQ(harness.alerts.size(), 2u);
}

TEST(StreamingDetector, MemoryBoundedUnderChurn) {
  StreamingConfig cfg;
  cfg.stream_timeout = net::kSecond;
  Harness harness(cfg);
  // 300k distinct packets over 300 s: table must stay near (rate x timeout)
  // = ~1000 entries plus the sweep interval, far below the packet count.
  TraceBuilder builder;
  net::TimeNs t = 0;
  std::uint16_t id = 0;
  for (int i = 0; i < 300'000; ++i) {
    builder.packet(t, Ipv4Addr(203, 0, 113, 10), 64, id++);
    t += net::kMillisecond;
    if (builder.size() >= 50'000) {
      harness.feed(builder.trace());
      builder = TraceBuilder();
      // keep timestamps increasing across chunks
      builder.packet(t, Ipv4Addr(198, 18, 0, 1), 64, id++);
      t += net::kMillisecond;
    }
  }
  harness.feed(builder.trace());
  EXPECT_LT(harness.detector.open_entries(), 50'000u);
}

TEST(StreamingDetector, TelemetryCountersMatchCallbacks) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  // Same shape as HolddownSuppressesRepeatAlerts: 2 alerts fire, every
  // other threshold crossing is suppressed by the hold-down.
  builder.replica_stream(0, dst, 60, 7, 10, 2, net::kMillisecond);
  builder.replica_stream(net::kSecond, dst, 60, 8, 10, 2, net::kMillisecond);
  builder.replica_stream(2 * net::kMinute, dst, 60, 9, 10, 2,
                         net::kMillisecond);

  telemetry::Registry reg;
  Harness harness({}, &reg);
  harness.feed(builder.trace());

  const auto alerts = reg.counter("rloop_streaming_alerts_total")->value();
  const auto suppressed =
      reg.counter("rloop_streaming_holddown_suppressed_total")->value();
  EXPECT_EQ(alerts, harness.alerts.size());
  EXPECT_EQ(alerts, harness.detector.alerts_raised());
  // Each 10-replica stream crosses the min_replicas=3 threshold on
  // observations 3..10 (8 crossings); every crossing either alerts or is
  // held down.
  EXPECT_EQ(alerts + suppressed, 3u * 8u);
  EXPECT_EQ(reg.counter("rloop_streaming_packets_total")->value(),
            harness.detector.packets_seen());
  EXPECT_EQ(static_cast<std::size_t>(
                reg.gauge("rloop_streaming_open_entries")->value()),
            harness.detector.open_entries());
}

// A timestamp regression is capture jitter, not a programming error: with
// zero tolerance (the default) the late packet is dropped and counted —
// never thrown. A daemon fed by real capture cannot afford an exception.
TEST(StreamingDetector, DropsBackwardsTimeInsteadOfThrowing) {
  TraceBuilder builder;
  builder.packet(1000, Ipv4Addr(203, 0, 113, 10), 64, 1);
  Harness harness;
  harness.feed(builder.trace());
  TraceBuilder earlier;
  earlier.packet(500, Ipv4Addr(203, 0, 113, 10), 64, 2);
  EXPECT_NO_THROW(harness.feed(earlier.trace()));
  EXPECT_EQ(harness.detector.reorder_dropped(), 1u);
  EXPECT_EQ(harness.detector.reordered(), 0u);
  EXPECT_EQ(harness.detector.packets_seen(), 2u);
}

// Within reorder_tolerance_ns the packet is clamped to the newest seen
// timestamp and still processed: a jittered replica keeps counting toward
// the alert threshold.
TEST(StreamingDetector, ClampsRegressionsWithinTolerance) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  builder.replica_stream(net::kSecond, dst, 60, 7, 3, 2, net::kMillisecond);
  const auto& records = builder.trace().records();
  ASSERT_EQ(records.size(), 3u);

  StreamingConfig cfg;
  cfg.reorder_tolerance_ns = 10 * net::kMillisecond;
  telemetry::Registry reg;
  Harness harness(cfg, &reg);
  // Deliver the third replica 2 ms *behind* the second: inside tolerance.
  harness.detector.on_packet(records[0].ts, records[0].bytes());
  harness.detector.on_packet(records[1].ts, records[1].bytes());
  harness.detector.on_packet(records[1].ts - 2 * net::kMillisecond,
                             records[2].bytes());

  EXPECT_EQ(harness.detector.reordered(), 1u);
  EXPECT_EQ(harness.detector.reorder_dropped(), 0u);
  ASSERT_EQ(harness.alerts.size(), 1u);  // clamped replica crossed threshold
  // The clamped packet's effective timestamp is the newest seen one.
  EXPECT_EQ(harness.alerts.front().raised_at, records[1].ts);
  EXPECT_EQ(reg.counter("rloop_streaming_reordered_total")->value(), 1u);
  EXPECT_EQ(reg.counter("rloop_streaming_reorder_dropped_total")->value(), 0u);
}

TEST(StreamingDetector, DropsRegressionsBeyondTolerance) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  builder.replica_stream(net::kSecond, dst, 60, 7, 3, 2, net::kMillisecond);
  const auto& records = builder.trace().records();

  StreamingConfig cfg;
  cfg.reorder_tolerance_ns = 10 * net::kMillisecond;
  telemetry::Registry reg;
  Harness harness(cfg, &reg);
  harness.detector.on_packet(records[0].ts, records[0].bytes());
  harness.detector.on_packet(records[1].ts, records[1].bytes());
  // 50 ms behind: beyond tolerance, dropped unprocessed.
  EXPECT_NO_THROW(harness.detector.on_packet(
      records[1].ts - 50 * net::kMillisecond, records[2].bytes()));

  EXPECT_EQ(harness.detector.reorder_dropped(), 1u);
  EXPECT_TRUE(harness.alerts.empty());  // the dropped replica never counted
  EXPECT_EQ(harness.detector.packets_seen(), 3u);
  EXPECT_EQ(reg.counter("rloop_streaming_reorder_dropped_total")->value(),
            1u);
}

// Boundary: a regression of *exactly* reorder_tolerance_ns is still inside
// the window — clamped, counted as reordered, and processed. The comparison
// is strict (`last_ts - ts > tolerance` drops), so the fence post belongs to
// the clamp side.
TEST(StreamingDetector, ExactlyAtToleranceClamps) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  builder.replica_stream(net::kSecond, dst, 60, 7, 3, 2, net::kMillisecond);
  const auto& records = builder.trace().records();

  StreamingConfig cfg;
  cfg.reorder_tolerance_ns = 10 * net::kMillisecond;
  telemetry::Registry reg;
  Harness harness(cfg, &reg);
  harness.detector.on_packet(records[0].ts, records[0].bytes());
  harness.detector.on_packet(records[1].ts, records[1].bytes());
  harness.detector.on_packet(records[1].ts - cfg.reorder_tolerance_ns,
                             records[2].bytes());

  EXPECT_EQ(harness.detector.reordered(), 1u);
  EXPECT_EQ(harness.detector.reorder_dropped(), 0u);
  ASSERT_EQ(harness.alerts.size(), 1u);
  EXPECT_EQ(harness.alerts.front().raised_at, records[1].ts);
  EXPECT_EQ(reg.counter("rloop_streaming_reordered_total")->value(), 1u);
  EXPECT_EQ(reg.counter("rloop_streaming_reorder_dropped_total")->value(), 0u);
}

// Boundary: one nanosecond beyond the tolerance flips the verdict from
// clamp to drop.
TEST(StreamingDetector, OneTickBeyondToleranceDrops) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  builder.replica_stream(net::kSecond, dst, 60, 7, 3, 2, net::kMillisecond);
  const auto& records = builder.trace().records();

  StreamingConfig cfg;
  cfg.reorder_tolerance_ns = 10 * net::kMillisecond;
  telemetry::Registry reg;
  Harness harness(cfg, &reg);
  harness.detector.on_packet(records[0].ts, records[0].bytes());
  harness.detector.on_packet(records[1].ts, records[1].bytes());
  harness.detector.on_packet(records[1].ts - cfg.reorder_tolerance_ns - 1,
                             records[2].bytes());

  EXPECT_EQ(harness.detector.reordered(), 0u);
  EXPECT_EQ(harness.detector.reorder_dropped(), 1u);
  EXPECT_TRUE(harness.alerts.empty());
  EXPECT_EQ(reg.counter("rloop_streaming_reordered_total")->value(), 0u);
  EXPECT_EQ(reg.counter("rloop_streaming_reorder_dropped_total")->value(),
            1u);
}

// Boundary: tolerance zero drops every regression, even by a single
// nanosecond, while an equal timestamp is not a regression at all and is
// processed normally.
TEST(StreamingDetector, ZeroToleranceDropsAllRegressions) {
  TraceBuilder builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  builder.replica_stream(net::kSecond, dst, 60, 7, 4, 2, net::kMillisecond);
  const auto& records = builder.trace().records();

  StreamingConfig cfg;
  cfg.reorder_tolerance_ns = 0;
  Harness harness(cfg);
  harness.detector.on_packet(records[0].ts, records[0].bytes());
  // Equal timestamp: ts < last_ts is false, so no regression machinery runs.
  harness.detector.on_packet(records[0].ts, records[1].bytes());
  // 1 ns behind: a regression, and with zero tolerance it is dropped.
  harness.detector.on_packet(records[0].ts - 1, records[2].bytes());
  // Far behind: also dropped.
  harness.detector.on_packet(records[0].ts - net::kSecond,
                             records[3].bytes());

  EXPECT_EQ(harness.detector.reordered(), 0u);
  EXPECT_EQ(harness.detector.reorder_dropped(), 2u);
  EXPECT_EQ(harness.detector.packets_seen(), 4u);
  // Only the two processed replicas count: below min_replicas, no alert.
  EXPECT_TRUE(harness.alerts.empty());
}

// The hard entry budget: peak resident entries never exceed
// max_open_entries no matter how many distinct packets flood in.
TEST(StreamingDetector, EntryBudgetCapsResidentEntries) {
  StreamingConfig cfg;
  cfg.max_open_entries = 1000;
  telemetry::Registry reg;
  Harness harness(cfg, &reg);

  TraceBuilder builder;
  net::TimeNs t = 0;
  std::uint16_t id = 0;
  for (int chunk = 0; chunk < 5; ++chunk) {
    builder = TraceBuilder();
    for (int i = 0; i < 10'000; ++i) {
      // Distinct dst + distinct id: every packet opens a fresh entry.
      builder.packet(t, Ipv4Addr(10, static_cast<std::uint8_t>(i >> 8),
                                 static_cast<std::uint8_t>(i), 1),
                     64, id++);
      t += net::kMicrosecond;
    }
    harness.feed(builder.trace());
  }

  EXPECT_LE(harness.detector.peak_open_entries(), 1000u);
  EXPECT_LE(harness.detector.open_entries(), 1000u);
  EXPECT_GT(harness.detector.evicted(), 0u);
  EXPECT_EQ(reg.counter("rloop_streaming_evicted_total")->value(),
            harness.detector.evicted());
}

// LRU-ish eviction keeps recently-touched entries: a replica stream that is
// actively counting survives budget churn from a flood of one-shot entries
// and still alerts.
TEST(StreamingDetector, ActiveStreamSurvivesBudgetChurn) {
  StreamingConfig cfg;
  cfg.max_open_entries = 500;
  Harness harness(cfg);

  TraceBuilder stream_builder;
  const Ipv4Addr dst(203, 0, 113, 10);
  stream_builder.replica_stream(0, dst, 60, 7, 10, 2, net::kMillisecond);
  const auto& replicas = stream_builder.trace().records();

  TraceBuilder noise_builder;
  net::TimeNs t = 0;
  std::uint16_t id = 1000;
  for (int i = 0; i < 5'000; ++i) {
    noise_builder.packet(t, Ipv4Addr(10, static_cast<std::uint8_t>(i >> 8),
                                     static_cast<std::uint8_t>(i), 1),
                         64, id++);
    t += net::kMicrosecond;
  }
  const auto& noise = noise_builder.trace().records();

  // Interleave: one replica touch every 50 noise packets keeps the stream
  // entry recent enough to dodge the oldest-1/8 eviction sweeps.
  std::size_t r = 0;
  for (std::size_t i = 0; i < noise.size(); ++i) {
    if (i % 50 == 0 && r < replicas.size()) {
      harness.detector.on_packet(noise[i].ts, replicas[r++].bytes());
    }
    harness.detector.on_packet(noise[i].ts, noise[i].bytes());
  }

  EXPECT_GE(harness.alerts.size(), 1u)
      << "budget churn evicted an actively-counting stream";
  EXPECT_LE(harness.detector.peak_open_entries(), 500u);
}

TEST(StreamingDetector, AgreesWithOfflineOnCleanStreams) {
  // Every offline-validated loop prefix should also be alerted online.
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 10), 60, 7, 10, 2, 1000);
  builder.replica_stream(net::kSecond, Ipv4Addr(198, 18, 0, 10), 100, 8, 20,
                         3, 1000);
  for (int i = 0; i < 100; ++i) {
    builder.packet(2 * net::kSecond + i * 1000, Ipv4Addr(10, 9, 8, 7), 64,
                   static_cast<std::uint16_t>(i));
  }

  const auto offline = detect_loops(builder.trace());
  Harness harness;
  harness.feed(builder.trace());

  ASSERT_EQ(offline.loops.size(), 2u);
  ASSERT_EQ(harness.alerts.size(), 2u);
  for (const auto& loop : offline.loops) {
    bool found = false;
    for (const auto& alert : harness.alerts) {
      if (alert.prefix24 == loop.prefix24) found = true;
    }
    EXPECT_TRUE(found) << loop.prefix24.to_string();
  }
}

}  // namespace
}  // namespace rloop::core
