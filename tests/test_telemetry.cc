#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/loop_detector.h"
#include "telemetry/counter.h"
#include "telemetry/exporter.h"
#include "trace_builder.h"

namespace rloop::telemetry {
namespace {

using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, PlacesObservationsInBuckets) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (boundary is inclusive)
  h.observe(50);    // <= 100
  h.observe(5000);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
}

TEST(Histogram, ExponentialBounds) {
  const auto bounds = exponential_bounds(1.0, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 1000.0);
}

TEST(Registry, RejectsUnsortedHistogramBounds) {
  Registry reg;
  EXPECT_THROW(reg.histogram("h", {3.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {1.0, 1.0}), std::invalid_argument);
}

TEST(Registry, SameIdentityReturnsSamePointer) {
  Registry reg;
  Counter* a = reg.counter("rloop_test_total", {{"x", "1"}, {"y", "2"}});
  // Label order must not matter.
  Counter* b = reg.counter("rloop_test_total", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  Counter* c = reg.counter("rloop_test_total", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(a, c);
  Counter* d = reg.counter("rloop_test_total");
  EXPECT_NE(a, d);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, TypeConflictThrows) {
  Registry reg;
  reg.counter("rloop_test_total");
  EXPECT_THROW(reg.gauge("rloop_test_total"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("rloop_test_total", {1.0}),
               std::invalid_argument);
}

TEST(Registry, NullHelpersAreNoOps) {
  EXPECT_EQ(get_counter(nullptr, "x"), nullptr);
  EXPECT_EQ(get_gauge(nullptr, "x"), nullptr);
  EXPECT_EQ(get_histogram(nullptr, "x", {1.0}), nullptr);
  // Updating through null pointers must be safe.
  inc(nullptr);
  set(nullptr, 7);
  observe(nullptr, 1.0);
  { ScopedTimer t(nullptr); }
}

TEST(Registry, ConcurrentIncrementsAreExact) {
  Registry reg;
  Counter* c = reg.counter("rloop_concurrent_total");
  Histogram* h = reg.histogram("rloop_concurrent_ns", {100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->inc();
        h->observe(50.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->bucket(0), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h->sum(), 50.0 * kThreads * kPerThread);
}

TEST(ScopedTimer, RecordsElapsedNanoseconds) {
  Registry reg;
  Histogram* h = reg.histogram("rloop_timer_ns", latency_bounds_ns());
  { ScopedTimer t(h); }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->sum(), 0.0);
}

TEST(Exporter, PrometheusGolden) {
  Registry reg;
  reg.counter("rloop_a_total", {}, "things counted")->inc(3);
  reg.gauge("rloop_b", {{"kind", "x"}})->set(-2);
  Histogram* h = reg.histogram("rloop_c_ns", {10.0, 100.0}, {}, "latencies");
  h->observe(5);
  h->observe(50);
  h->observe(500);

  const std::string expected =
      "# HELP rloop_a_total things counted\n"
      "# TYPE rloop_a_total counter\n"
      "rloop_a_total 3\n"
      "# TYPE rloop_b gauge\n"
      "rloop_b{kind=\"x\"} -2\n"
      "# HELP rloop_c_ns latencies\n"
      "# TYPE rloop_c_ns histogram\n"
      "rloop_c_ns_bucket{le=\"10\"} 1\n"
      "rloop_c_ns_bucket{le=\"100\"} 2\n"
      "rloop_c_ns_bucket{le=\"+Inf\"} 3\n"
      "rloop_c_ns_sum 555\n"
      "rloop_c_ns_count 3\n";
  EXPECT_EQ(to_prometheus(reg.snapshot()), expected);
}

// Regression: backslash, double-quote and newline in label values (and
// backslash/newline in HELP text) must be escaped per the exposition format,
// or the emitted line — and every line after it — is unparseable.
TEST(Exporter, PrometheusEscapesLabelValuesAndHelp) {
  Registry reg;
  reg.counter("rloop_esc_total", {{"path", "C:\\dir\n\"quoted\""}},
              "line one\nline \\two")
      ->inc();
  const std::string expected =
      "# HELP rloop_esc_total line one\\nline \\\\two\n"
      "# TYPE rloop_esc_total counter\n"
      "rloop_esc_total{path=\"C:\\\\dir\\n\\\"quoted\\\"\"} 1\n";
  EXPECT_EQ(to_prometheus(reg.snapshot()), expected);
  // Histogram label rendering goes through a second code path (`le` append).
  Registry reg2;
  reg2.histogram("rloop_esc_ns", {10.0}, {{"q", "a\"b"}})->observe(5);
  const std::string prom = to_prometheus(reg2.snapshot());
  EXPECT_NE(prom.find("q=\"a\\\"b\""), std::string::npos) << prom;
}

TEST(Exporter, JsonGolden) {
  Registry reg;
  reg.counter("rloop_a_total")->inc(3);
  Histogram* h = reg.histogram("rloop_c_ns", {10.0});
  h->observe(5);

  const std::string expected =
      "[\n"
      "  {\"name\":\"rloop_a_total\",\"type\":\"counter\",\"value\":3},\n"
      "  {\"name\":\"rloop_c_ns\",\"type\":\"histogram\",\"count\":1,"
      "\"sum\":5,\"bounds\":[10],\"buckets\":[1,0]}\n"
      "]\n";
  EXPECT_EQ(to_json(reg.snapshot()), expected);
}

TEST(Exporter, PeriodicPumpFiresPerInterval) {
  Registry reg;
  reg.counter("rloop_a_total")->inc();
  int fired = 0;
  PeriodicExporter exporter(&reg, net::kSecond,
                            PeriodicExporter::Format::prometheus,
                            [&fired](const std::string& text) {
                              ++fired;
                              EXPECT_NE(text.find("rloop_a_total"),
                                        std::string::npos);
                            });
  EXPECT_FALSE(exporter.pump(0));  // anchors the phase, no export
  EXPECT_FALSE(exporter.pump(net::kSecond / 2));
  EXPECT_TRUE(exporter.pump(net::kSecond));
  EXPECT_FALSE(exporter.pump(net::kSecond + 1));  // re-anchored on fire
  EXPECT_TRUE(exporter.pump(5 * net::kSecond));   // one export per pump
  EXPECT_EQ(fired, 2);
  exporter.flush(5 * net::kSecond);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(exporter.exports(), 3u);
}

// End-to-end: the offline pipeline with a registry attached reports every
// stage timer and the replica/stream counters.
TEST(PipelineTelemetry, DetectLoopsPopulatesRegistry) {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 10), 60, 7, 6, 2,
                         net::kMillisecond);
  builder.replica_stream(net::kSecond, Ipv4Addr(203, 0, 113, 10), 60, 8, 2, 2,
                         net::kMillisecond);  // too small: rejected
  for (int i = 0; i < 50; ++i) {
    builder.packet(i * 1000, Ipv4Addr(198, 18, 5, 1), 64,
                   static_cast<std::uint16_t>(i));
  }

  Registry reg;
  core::LoopDetectorConfig config;
  config.registry = &reg;
  const auto result = core::detect_loops(builder.trace(), config);
  ASSERT_EQ(result.loops.size(), 1u);

  for (const char* stage : {"parse", "detect", "validate", "merge"}) {
    Histogram* h = reg.histogram("rloop_pipeline_stage_latency_ns",
                                 latency_bounds_ns(), {{"stage", stage}});
    EXPECT_EQ(h->count(), 1u) << stage;
    EXPECT_GT(h->sum(), 0.0) << stage;
  }
  EXPECT_EQ(reg.counter("rloop_detector_records_total")->value(),
            builder.size());
  EXPECT_EQ(reg.counter("rloop_detector_replicas_matched_total")->value(),
            6u);  // 5 in the big stream + 1 in the small one
  EXPECT_GT(reg.counter("rloop_detector_streams_opened_total")->value(), 0u);
  EXPECT_EQ(reg.counter("rloop_detector_streams_emitted_total")->value(), 2u);
  EXPECT_EQ(reg.counter("rloop_validator_streams_accepted_total")->value(),
            1u);
  EXPECT_EQ(reg.counter("rloop_validator_streams_rejected_total",
                        {{"reason", "too_small"}})
                ->value(),
            1u);
  EXPECT_EQ(reg.counter("rloop_merger_loops_total")->value(), 1u);
  EXPECT_EQ(reg.histogram("rloop_detector_replica_spacing_ns",
                          spacing_bounds_ns())
                ->count(),
            6u);
  // The second run over the same registry accumulates.
  core::detect_loops(builder.trace(), config);
  EXPECT_EQ(reg.counter("rloop_merger_loops_total")->value(), 2u);
}

}  // namespace
}  // namespace rloop::telemetry
