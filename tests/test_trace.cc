#include "net/trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "net/time.h"

namespace rloop::net {
namespace {

ParsedPacket sample_packet(std::uint8_t ttl = 64, std::uint16_t id = 1) {
  return make_tcp_packet(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8), 1000, 80,
                         0, 0, kTcpAck, 100, ttl, id);
}

TEST(Trace, StoresRecordsInOrder) {
  Trace trace("test", 0);
  trace.add(100, sample_packet(), 140);
  trace.add(200, sample_packet(), 140);
  trace.add(200, sample_packet(), 140);  // equal timestamps allowed
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].ts, 100);
  EXPECT_EQ(trace[2].ts, 200);
}

TEST(Trace, RejectsBackwardsTimestamps) {
  Trace trace("test", 0);
  trace.add(100, sample_packet(), 140);
  EXPECT_THROW(trace.add(99, sample_packet(), 140), std::invalid_argument);
}

TEST(Trace, CapturesAtMostSnapLen) {
  Trace trace("test", 0);
  std::vector<std::byte> big(100, std::byte{0xaa});
  trace.add(0, big, 100);
  EXPECT_EQ(trace[0].cap_len, kSnapLen);
  EXPECT_EQ(trace[0].wire_len, 100u);
  EXPECT_EQ(trace[0].bytes().size(), kSnapLen);
}

TEST(Trace, SerializedPacketRoundtripsThroughRecord) {
  Trace trace("test", 0);
  const auto pkt = sample_packet(61, 42);
  trace.add(5, pkt, pkt.ip.total_length);
  const auto parsed = parse_packet(trace[0].bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST(Trace, DurationAndBandwidth) {
  Trace trace("test", 0);
  // Two 1250-byte packets one second apart: 10000 bits over 1 s = 0.01 Mbps.
  trace.add(0, sample_packet(), 1250);
  trace.add(kSecond, sample_packet(), 1250);
  EXPECT_EQ(trace.duration(), kSecond);
  EXPECT_DOUBLE_EQ(trace.average_bandwidth_mbps(), 2 * 1250 * 8 / 1e6);
  EXPECT_EQ(trace.total_wire_bytes(), 2500u);
}

TEST(Trace, EmptyAndSingletonDuration) {
  Trace trace("test", 0);
  EXPECT_EQ(trace.duration(), 0);
  EXPECT_EQ(trace.average_bandwidth_mbps(), 0.0);
  trace.add(77, sample_packet(), 40);
  EXPECT_EQ(trace.duration(), 0);
}

TEST(Trace, MetadataAccessors) {
  Trace trace("link-7", 1'005'224'400);
  EXPECT_EQ(trace.link_name(), "link-7");
  EXPECT_EQ(trace.epoch_unix_s(), 1'005'224'400);
  trace.set_link_name("renamed");
  trace.set_epoch_unix_s(7);
  EXPECT_EQ(trace.link_name(), "renamed");
  EXPECT_EQ(trace.epoch_unix_s(), 7);
}

}  // namespace
}  // namespace rloop::net
