#include <gtest/gtest.h>

#include "baseline/comparison.h"
#include "baseline/prober.h"
#include "net/packet.h"

namespace rloop::baseline {
namespace {

using net::Ipv4Addr;
using net::Prefix;

// --- merge_crossings --------------------------------------------------------

sim::LoopCrossing crossing(net::TimeNs t, const Prefix& p) {
  sim::LoopCrossing c;
  c.time = t;
  c.dst_prefix24 = p;
  c.node = 0;
  c.packet_id = 0;
  return c;
}

TEST(MergeCrossings, MergesWithinGapSplitsBeyond) {
  const auto p = *Prefix::parse("203.0.113.0/24");
  std::vector<sim::LoopCrossing> crossings = {
      crossing(0, p), crossing(net::kSecond, p),
      crossing(10 * net::kSecond, p),  // > 2 s gap: new loop
  };
  const auto loops = merge_crossings(crossings, 2 * net::kSecond);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].start, 0);
  EXPECT_EQ(loops[0].end, net::kSecond);
  EXPECT_EQ(loops[0].crossings, 2u);
  EXPECT_EQ(loops[1].start, 10 * net::kSecond);
}

TEST(MergeCrossings, SeparatesPrefixes) {
  const auto p1 = *Prefix::parse("203.0.113.0/24");
  const auto p2 = *Prefix::parse("198.18.5.0/24");
  std::vector<sim::LoopCrossing> crossings = {crossing(0, p1),
                                              crossing(100, p2)};
  const auto loops = merge_crossings(crossings);
  EXPECT_EQ(loops.size(), 2u);
}

TEST(MergeCrossings, HandlesUnsortedInput) {
  const auto p = *Prefix::parse("203.0.113.0/24");
  std::vector<sim::LoopCrossing> crossings = {crossing(net::kSecond, p),
                                              crossing(0, p)};
  const auto loops = merge_crossings(crossings, 2 * net::kSecond);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].start, 0);
  EXPECT_EQ(loops[0].end, net::kSecond);
}

// --- scoring ----------------------------------------------------------------

TruthLoop truth(const Prefix& p, net::TimeNs start, net::TimeNs end) {
  TruthLoop t;
  t.prefix24 = p;
  t.start = start;
  t.end = end;
  return t;
}

core::RoutingLoop report(const Prefix& p, net::TimeNs start, net::TimeNs end) {
  core::RoutingLoop r;
  r.prefix24 = p;
  r.start = start;
  r.end = end;
  return r;
}

TEST(ScorePassive, RecallAndPrecision) {
  const auto p1 = *Prefix::parse("203.0.113.0/24");
  const auto p2 = *Prefix::parse("198.18.5.0/24");
  const std::vector<TruthLoop> truths = {
      truth(p1, 0, net::kSecond),
      truth(p2, 10 * net::kSecond, 12 * net::kSecond)};
  const std::vector<core::RoutingLoop> reports = {
      report(p1, 100, net::kSecond / 2),                        // hit
      report(p1, 100 * net::kSecond, 101 * net::kSecond),       // miss (time)
      report(*Prefix::parse("9.9.9.0/24"), 0, net::kSecond)};   // miss (prefix)
  const auto score = score_passive(truths, reports, /*slack=*/0);
  EXPECT_EQ(score.truth_loops, 2u);
  EXPECT_EQ(score.detected, 1u);
  EXPECT_EQ(score.reports, 3u);
  EXPECT_EQ(score.unmatched_reports, 2u);
  EXPECT_DOUBLE_EQ(score.recall(), 0.5);
  EXPECT_NEAR(score.precision(), 1.0 / 3.0, 1e-12);
}

TEST(ScorePassive, SlackExtendsMatching) {
  const auto p = *Prefix::parse("203.0.113.0/24");
  const std::vector<TruthLoop> truths = {truth(p, 0, net::kSecond)};
  // Report starts 0.5 s after the truth loop ended.
  const std::vector<core::RoutingLoop> reports = {
      report(p, net::kSecond + net::kSecond / 2, 3 * net::kSecond)};
  EXPECT_EQ(score_passive(truths, reports, /*slack=*/0).detected, 0u);
  EXPECT_EQ(score_passive(truths, reports, net::kSecond).detected, 1u);
}

TEST(ScoreProber, OnlyLoopObservationsCount) {
  const auto p = *Prefix::parse("203.0.113.0/24");
  const std::vector<TruthLoop> truths = {truth(p, 0, 10 * net::kSecond)};
  ProbeObservation inside;
  inside.time = net::kSecond;
  inside.target = p;
  inside.loop_detected = true;
  ProbeObservation negative = inside;
  negative.loop_detected = false;
  ProbeObservation outside = inside;
  outside.time = net::kMinute;
  const auto score =
      score_prober(truths, {inside, negative, outside}, /*slack=*/0);
  EXPECT_EQ(score.reports, 2u);  // only loop_detected observations
  EXPECT_EQ(score.detected, 1u);
  EXPECT_EQ(score.unmatched_reports, 1u);
}

TEST(DetectorScore, DegenerateRatios) {
  DetectorScore score;
  EXPECT_DOUBLE_EQ(score.recall(), 0.0);
  EXPECT_DOUBLE_EQ(score.precision(), 0.0);
}

// --- prober end-to-end -------------------------------------------------------

TEST(TracerouteProber, ReconstructsPathAndReachesDestination) {
  // Chain: vantage - m1 - m2 - egress.
  routing::Topology topo;
  const auto vantage = topo.add_node("vantage");
  const auto m1 = topo.add_node("m1");
  const auto m2 = topo.add_node("m2");
  const auto egress = topo.add_node("egress");
  topo.add_link(vantage, m1, net::kMillisecond, 1e9, 100, 1);
  topo.add_link(m1, m2, net::kMillisecond, 1e9, 100, 1);
  topo.add_link(m2, egress, net::kMillisecond, 1e9, 100, 1);

  sim::Network network(topo, 1, {});
  const auto target = *Prefix::parse("203.0.113.0/24");
  network.attach_external_route({target, {egress}});
  network.install_all_routes();

  ProberConfig cfg;
  cfg.start = net::kSecond;
  cfg.probe_interval = net::kMinute;
  cfg.duration = 2 * net::kSecond;  // one sweep
  cfg.max_ttl = 8;
  TracerouteProber prober(cfg, {target}, vantage);
  prober.install(network);
  network.run_all();

  ASSERT_EQ(prober.observations().size(), 1u);
  const auto& obs = prober.observations().front();
  EXPECT_TRUE(obs.reached);
  EXPECT_FALSE(obs.loop_detected);
  // TTL1 expires at m1, TTL2 at m2, TTL3 delivered at egress.
  ASSERT_EQ(obs.path.size(), 3u);
  EXPECT_EQ(obs.path[0], m1);
  EXPECT_EQ(obs.path[1], m2);
  EXPECT_EQ(obs.path[2], egress);
}

TEST(TracerouteProber, DetectsLoopInProgress) {
  // Figure-1 triangle with a slow fallback: the loop lasts ~ the MRAI, and
  // the sweep runs while it is active.
  routing::Topology topo;
  const auto r = topo.add_node("R");
  const auto r1 = topo.add_node("R1");
  const auto r2 = topo.add_node("R2");
  topo.add_link(r, r1, net::kMillisecond, 1e9, 200, 1);
  topo.add_link(r, r2, net::kMillisecond, 1e9, 200, 1);
  topo.add_link(r1, r2, net::kMillisecond, 1e9, 200, 1);

  sim::NetworkConfig net_cfg;
  net_cfg.bgp.ibgp_prop_mean = 4 * net::kSecond;
  net_cfg.bgp.ibgp_prop_jitter = 0;
  net_cfg.bgp.mrai_max = 4 * net::kSecond;
  sim::Network network(topo, 9, net_cfg);
  const auto target = *Prefix::parse("203.0.113.0/24");
  network.attach_external_route({target, {r, r2}});
  network.attach_external_route({*Prefix::parse("198.51.100.0/24"), {r1}});
  network.install_all_routes();

  // Withdraw right before the sweep so the loop is active during probing.
  network.withdraw_best_egress(target, net::kSecond);

  ProberConfig cfg;
  cfg.start = 2 * net::kSecond;
  cfg.probe_interval = net::kMinute;
  cfg.duration = net::kSecond;  // single sweep at t=2s
  cfg.max_ttl = 10;
  TracerouteProber prober(cfg, {target}, r1);
  prober.install(network);
  network.run_until(net::kMinute);

  ASSERT_EQ(prober.observations().size(), 1u);
  EXPECT_TRUE(prober.observations().front().loop_detected);
  EXPECT_GT(prober.probes_sent(), 0u);
}

TEST(TracerouteProber, MissesLoopBetweenSweeps) {
  // Same scenario, but the sweep fires long after the loop healed: the
  // paper's core argument against probing-based detection.
  routing::Topology topo;
  const auto r = topo.add_node("R");
  const auto r1 = topo.add_node("R1");
  const auto r2 = topo.add_node("R2");
  topo.add_link(r, r1, net::kMillisecond, 1e9, 200, 1);
  topo.add_link(r, r2, net::kMillisecond, 1e9, 200, 1);
  topo.add_link(r1, r2, net::kMillisecond, 1e9, 200, 1);

  sim::NetworkConfig net_cfg;
  net_cfg.bgp.mrai_max = net::kSecond;
  sim::Network network(topo, 9, net_cfg);
  const auto target = *Prefix::parse("203.0.113.0/24");
  network.attach_external_route({target, {r, r2}});
  network.attach_external_route({*Prefix::parse("198.51.100.0/24"), {r1}});
  network.install_all_routes();
  network.withdraw_best_egress(target, net::kSecond);

  ProberConfig cfg;
  cfg.start = 30 * net::kSecond;  // loop healed within ~2 s
  cfg.probe_interval = net::kMinute;
  cfg.duration = net::kSecond;
  TracerouteProber prober(cfg, {target}, r1);
  prober.install(network);
  network.run_until(2 * net::kMinute);

  ASSERT_EQ(prober.observations().size(), 1u);
  EXPECT_FALSE(prober.observations().front().loop_detected);
  EXPECT_TRUE(prober.observations().front().reached);
}

}  // namespace
}  // namespace rloop::baseline
