// util/FlatMap correctness: unit pins for the open-addressing invariants
// (insert/erase/rehash, backward-shift erase, collision chains, the
// precomputed-hash entry points) plus a randomized differential test that
// replays the same operation stream into std::unordered_map and demands
// identical observable behavior. Also exercises util/Arena, which the
// detector pairs with the map.
#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "util/random.h"

namespace rloop::util {
namespace {

TEST(FlatMap, InsertFindEraseBasics) {
  FlatMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);

  auto [v1, inserted1] = map.emplace(1, "one");
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, "one");
  auto [v2, inserted2] = map.emplace(1, "uno");
  EXPECT_FALSE(inserted2) << "second emplace of same key must not insert";
  EXPECT_EQ(*v2, "one") << "existing value must be untouched";
  EXPECT_EQ(v1, v2);

  map.emplace(2, "two");
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(2), nullptr);
  EXPECT_EQ(*map.find(2), "two");

  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.find(1), nullptr);
  ASSERT_NE(map.find(2), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<int, int> map;
  map[7] += 3;
  map[7] += 4;
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 7);
}

TEST(FlatMap, RehashPreservesAllEntries) {
  FlatMap<int, int> map;
  constexpr int kN = 20000;  // forces many doublings from the minimum size
  for (int i = 0; i < kN; ++i) map.emplace(i, i * 3);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_NE(map.find(i), nullptr) << i;
    EXPECT_EQ(*map.find(i), i * 3) << i;
  }
  EXPECT_EQ(map.find(kN), nullptr);
  // Power-of-two slot count, load kept at or below 7/8.
  EXPECT_EQ(map.bucket_count() & (map.bucket_count() - 1), 0u);
  EXPECT_LE(map.size() * 8, map.bucket_count() * 7);
}

// All keys share one hash value: every probe walks one collision chain, and
// erase exercises backward shift across the whole cluster. Equality still
// separates the keys — no false merges.
struct ConstantHash {
  std::size_t operator()(int) const noexcept { return 42; }
};

TEST(FlatMap, CollisionChainInsertFindErase) {
  FlatMap<int, int, ConstantHash> map;
  constexpr int kN = 120;  // well below the uint8 probe-distance bound
  for (int i = 0; i < kN; ++i) map.emplace(i, -i);
  for (int i = 0; i < kN; ++i) {
    ASSERT_NE(map.find(i), nullptr) << i;
    EXPECT_EQ(*map.find(i), -i) << i;
  }
  EXPECT_EQ(map.find(kN + 1), nullptr);

  // Erase from the middle of the chain; the rest must stay reachable.
  for (int i = 0; i < kN; i += 3) EXPECT_TRUE(map.erase(i)) << i;
  for (int i = 0; i < kN; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(map.find(i), nullptr) << i;
    } else {
      ASSERT_NE(map.find(i), nullptr) << i;
      EXPECT_EQ(*map.find(i), -i) << i;
    }
  }
}

TEST(FlatMap, DegenerateHashBeyondProbeBoundThrows) {
  FlatMap<int, int, ConstantHash> map;
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) map.emplace(i, i);
      },
      std::length_error);
}

TEST(FlatMap, PrecomputedHashPathMatchesNormalPath) {
  FlatMap<std::uint64_t, int> map;
  const std::hash<std::uint64_t> hasher;
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::uint64_t h = hasher(k);
    auto [value, inserted] = map.emplace_hashed(
        h, [&](const std::uint64_t& stored) { return stored == k; }, k,
        static_cast<int>(k * 2));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*value, static_cast<int>(k * 2));
  }
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::uint64_t h = hasher(k);
    // find_hashed must agree with find.
    int* by_hash = map.find_hashed(
        h, [&](const std::uint64_t& stored) { return stored == k; });
    ASSERT_NE(by_hash, nullptr) << k;
    EXPECT_EQ(by_hash, map.find(k)) << k;
  }
  // erase_hashed removes exactly the matching key.
  EXPECT_TRUE(map.erase_hashed(
      hasher(7), [](const std::uint64_t& stored) { return stored == 7; }));
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_NE(map.find(8), nullptr);
}

TEST(FlatMap, EraseIfSweepsPredicatedEntries) {
  FlatMap<int, int> map;
  for (int i = 0; i < 5000; ++i) map.emplace(i, i);
  const std::size_t erased =
      map.erase_if([](const int& k, int&) { return k % 2 == 0; });
  EXPECT_EQ(erased, 2500u);
  EXPECT_EQ(map.size(), 2500u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(map.find(i) != nullptr, i % 2 == 1) << i;
  }
  // A sweep erasing everything leaves an empty, reusable map.
  map.erase_if([](const int&, int&) { return true; });
  EXPECT_TRUE(map.empty());
  map.emplace(1, 1);
  EXPECT_NE(map.find(1), nullptr);
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce) {
  FlatMap<int, int> map;
  for (int i = 0; i < 777; ++i) map.emplace(i, 1);
  std::vector<int> seen(777, 0);
  map.for_each([&](const int& k, int&) { ++seen[static_cast<size_t>(k)]; });
  for (int i = 0; i < 777; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << i;
}

TEST(FlatMap, ClearKeepsCapacityAndReleasesEntries) {
  FlatMap<int, std::string> map;
  for (int i = 0; i < 100; ++i) map.emplace(i, std::string(100, 'x'));
  const auto cap = map.bucket_count();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.bucket_count(), cap);
  EXPECT_EQ(map.find(5), nullptr);
  map.emplace(5, "back");
  EXPECT_EQ(*map.find(5), "back");
}

// Weak-but-legal hash: many collisions, low-bit structure. The map must
// behave identically to std::unordered_map regardless.
struct LousyHash {
  std::size_t operator()(std::uint32_t k) const noexcept { return k % 97; }
};

template <class Hasher>
void run_differential(std::uint64_t seed, int ops) {
  util::Rng rng(seed);
  FlatMap<std::uint32_t, std::uint64_t, Hasher> flat;
  std::unordered_map<std::uint32_t, std::uint64_t, Hasher> reference;
  for (int op = 0; op < ops; ++op) {
    const std::uint32_t key =
        static_cast<std::uint32_t>(rng.uniform_int(0, 400));
    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert
        const std::uint64_t value = rng.next_u64();
        const auto [ptr, inserted] = flat.emplace(key, value);
        const auto [it, ref_inserted] = reference.emplace(key, value);
        ASSERT_EQ(inserted, ref_inserted) << "op " << op;
        ASSERT_EQ(*ptr, it->second) << "op " << op;
        break;
      }
      case 4:
      case 5: {  // erase
        ASSERT_EQ(flat.erase(key), reference.erase(key) == 1) << "op " << op;
        break;
      }
      case 6: {  // bracket upsert
        const std::uint64_t value = rng.next_u64();
        flat[key] = value;
        reference[key] = value;
        break;
      }
      default: {  // lookup
        const auto* ptr = flat.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(ptr != nullptr, it != reference.end()) << "op " << op;
        if (ptr != nullptr) {
          ASSERT_EQ(*ptr, it->second) << "op " << op;
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), reference.size()) << "op " << op;
  }
  // Full-table sweep comparison at the end.
  std::size_t visited = 0;
  flat.for_each([&](const std::uint32_t& k, std::uint64_t& v) {
    ++visited;
    const auto it = reference.find(k);
    ASSERT_NE(it, reference.end()) << k;
    EXPECT_EQ(v, it->second) << k;
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMapDifferential, MatchesUnorderedMapAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_differential<std::hash<std::uint32_t>>(seed, 20000);
  }
}

TEST(FlatMapDifferential, MatchesUnorderedMapWithLousyHash) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_differential<LousyHash>(seed, 12000);
  }
}

// --- Arena -------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);  // small chunks to force growth
  struct Node {
    std::uint64_t a;
    std::uint32_t b;
  };
  std::vector<Node*> nodes;
  for (int i = 0; i < 1000; ++i) {
    Node* n = arena.create<Node>(Node{static_cast<std::uint64_t>(i),
                                      static_cast<std::uint32_t>(i * 2)});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(n) % alignof(Node), 0u);
    nodes.push_back(n);
  }
  // Every object keeps its value: no overlap between allocations.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(nodes[static_cast<size_t>(i)]->a, static_cast<std::uint64_t>(i));
    EXPECT_EQ(nodes[static_cast<size_t>(i)]->b,
              static_cast<std::uint32_t>(i * 2));
  }
  EXPECT_GT(arena.chunk_count(), 1u) << "small chunks must have grown";
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(128);
  auto* big = arena.allocate_array<std::uint8_t>(10000);
  big[0] = 1;
  big[9999] = 2;
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[9999], 2);
  // Small allocations still work afterwards.
  auto* small = arena.create<std::uint64_t>(77u);
  EXPECT_EQ(*small, 77u);
}

TEST(Arena, ReleaseFreesWholesaleAndAllowsReuse) {
  Arena arena;
  (void)arena.allocate_array<std::uint64_t>(1000);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  auto* p = arena.create<int>(5);
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace rloop::util
