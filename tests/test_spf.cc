#include "routing/link_state.h"

#include <gtest/gtest.h>

#include "routing/bgp_lite.h"

#include <algorithm>
#include <limits>

namespace rloop::routing {
namespace {

// Line topology a - b - c.
struct Line {
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;
  Line() {
    a = topo.add_node("a");
    b = topo.add_node("b");
    c = topo.add_node("c");
    ab = topo.add_link(a, b, 1000, 1e9, 10, 1);
    bc = topo.add_link(b, c, 1000, 1e9, 10, 1);
  }
};

TEST(Spf, LineTopologyDistancesAndNextHops) {
  Line line;
  const auto spf = compute_spf(line.topo, line.a);
  EXPECT_EQ(spf.distance[static_cast<std::size_t>(line.a)], 0u);
  EXPECT_EQ(spf.distance[static_cast<std::size_t>(line.b)], 1u);
  EXPECT_EQ(spf.distance[static_cast<std::size_t>(line.c)], 2u);
  EXPECT_EQ(spf.next_hop_link[static_cast<std::size_t>(line.b)], line.ab);
  // First hop toward c is still the a-b link.
  EXPECT_EQ(spf.next_hop_link[static_cast<std::size_t>(line.c)], line.ab);
  EXPECT_EQ(spf.next_hop_link[static_cast<std::size_t>(line.a)], -1);
  EXPECT_FALSE(spf.reachable(line.a));
  EXPECT_TRUE(spf.reachable(line.c));
}

TEST(Spf, RespectsCosts) {
  // Triangle where the direct a-c link is more expensive than a-b-c.
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto ab = topo.add_link(a, b, 0, 1e9, 10, 1);
  topo.add_link(a, c, 0, 1e9, 10, 5);
  topo.add_link(b, c, 0, 1e9, 10, 1);

  const auto spf = compute_spf(topo, a);
  EXPECT_EQ(spf.distance[static_cast<std::size_t>(c)], 2u);
  EXPECT_EQ(spf.next_hop_link[static_cast<std::size_t>(c)], ab);
}

TEST(Spf, IgnoresDownLinks) {
  Line line;
  line.topo.set_link_up(line.bc, false);
  const auto spf = compute_spf(line.topo, line.a);
  EXPECT_TRUE(spf.reachable(line.b));
  EXPECT_FALSE(spf.reachable(line.c));
  EXPECT_EQ(spf.distance[static_cast<std::size_t>(line.c)],
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Spf, EqualCostTieBreakIsDeterministic) {
  // Two equal-cost 2-hop paths a-b-d and a-c-d; tie resolves to the lower
  // first-hop link id, which is a-b (created first).
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto d = topo.add_node("d");
  const auto ab = topo.add_link(a, b, 0, 1e9, 10, 1);
  topo.add_link(a, c, 0, 1e9, 10, 1);
  topo.add_link(b, d, 0, 1e9, 10, 1);
  topo.add_link(c, d, 0, 1e9, 10, 1);

  for (int i = 0; i < 5; ++i) {
    const auto spf = compute_spf(topo, a);
    EXPECT_EQ(spf.next_hop_link[static_cast<std::size_t>(d)], ab);
  }
}

TEST(Spf, DisconnectedComponent) {
  Topology topo;
  const auto a = topo.add_node("a");
  topo.add_node("island");
  const auto spf = compute_spf(topo, a);
  EXPECT_FALSE(spf.reachable(1));
}

TEST(ConvergenceSchedule, CoversAllConnectedNodesAfterEventTime) {
  Line line;
  util::Rng rng(5);
  const ConvergenceConfig cfg;
  const auto schedule =
      link_event_schedule(line.topo, line.bc, 1000000, cfg, rng);
  ASSERT_EQ(schedule.size(), line.topo.node_count());
  for (const auto& update : schedule) {
    EXPECT_GT(update.time, 1000000);
  }
}

TEST(ConvergenceSchedule, EndpointsConvergeBeforeDistantNodes) {
  // Long chain: endpoint of the failed link should almost always converge
  // before the far end (it skips flooding hops).
  Topology topo;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(topo.add_node("n"));
  std::vector<LinkId> links;
  for (int i = 0; i + 1 < 8; ++i) {
    links.push_back(topo.add_link(nodes[i], nodes[i + 1], 0, 1e9, 10, 1));
  }

  util::Rng rng(7);
  ConvergenceConfig cfg;
  cfg.detect_delay_jitter = 0;
  cfg.flood_per_hop_jitter = 0;
  cfg.spf_delay_jitter = 0;
  cfg.fib_update_jitter = 0;
  // Deterministic config: learn time strictly increases with hop count.
  const auto schedule = link_event_schedule(topo, links[0], 0, cfg, rng);
  net::TimeNs t0 = 0, t7 = 0;
  for (const auto& update : schedule) {
    if (update.node == nodes[0]) t0 = update.time;
    if (update.node == nodes[7]) t7 = update.time;
  }
  EXPECT_LT(t0, t7);
}

TEST(ConvergenceSchedule, FailedLinkDoesNotCarryFlooding) {
  // Two nodes joined ONLY by the failing link: the far side cannot learn
  // about the failure through it, but both endpoints detect locally.
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto ab = topo.add_link(a, b, 0, 1e9, 10, 1);
  util::Rng rng(3);
  const auto schedule = link_event_schedule(topo, ab, 0, ConvergenceConfig{},
                                            rng);
  // Both endpoints appear (hops == 0 from themselves).
  EXPECT_EQ(schedule.size(), 2u);
}

TEST(ConvergenceSchedule, DeterministicGivenSeed) {
  Line line;
  util::Rng rng1(11), rng2(11);
  const auto s1 = link_event_schedule(line.topo, line.ab, 0,
                                      ConvergenceConfig{}, rng1);
  const auto s2 = link_event_schedule(line.topo, line.ab, 0,
                                      ConvergenceConfig{}, rng2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].node, s2[i].node);
    EXPECT_EQ(s1[i].time, s2[i].time);
  }
}

TEST(BgpSchedule, OriginConvergesFirst) {
  Line line;
  util::Rng rng(13);
  BgpConfig cfg;
  cfg.mrai_max = 10 * net::kSecond;
  for (int trial = 0; trial < 10; ++trial) {
    const auto schedule = bgp_event_schedule(line.topo, line.b, 0, cfg, rng);
    ASSERT_EQ(schedule.size(), 3u);
    net::TimeNs origin_time = 0;
    net::TimeNs min_other = std::numeric_limits<net::TimeNs>::max();
    for (const auto& update : schedule) {
      if (update.node == line.b) origin_time = update.time;
      else min_other = std::min(min_other, update.time);
    }
    EXPECT_LT(origin_time, min_other);
  }
}

TEST(BgpSchedule, MraiStretchesConvergence) {
  Line line;
  util::Rng rng(17);
  BgpConfig slow;
  slow.mrai_max = 60 * net::kSecond;
  net::TimeNs max_time = 0;
  for (int trial = 0; trial < 20; ++trial) {
    for (const auto& update :
         bgp_event_schedule(line.topo, line.a, 0, slow, rng)) {
      max_time = std::max(max_time, update.time);
    }
  }
  // With 60 s MRAI across 40 draws, some node lands well past 20 s.
  EXPECT_GT(max_time, 20 * net::kSecond);
}

}  // namespace
}  // namespace rloop::routing
