// Ground-truth precision/recall gates for the canned scenario suite.
//
// Each canned scenario (scenarios/scenario.h) runs under its pinned seed and
// must pass every gate evaluate_scenario() applies: 100% recall over
// detectable truth loops on the serial, parallel{2,4} and streaming paths,
// precision at or above the spec's pinned floor, and byte-identical report
// lines from the serial and parallel offline paths. On top of the per-
// scenario gates this file proves the properties the engine itself promises:
// bit-reproducibility from one seed, daemon alerts identical to the bare
// streaming detector, and exact drop accounting (with recall re-scored on
// the consumed subset's ground truth) when a scenario replay overloads the
// SPSC ring in drop-newest mode.
//
// Tests named *Stress* run scenarios off their pinned seeds and carry the
// ctest "slow" label (see tests/CMakeLists.txt); `ctest -LE slow` skips
// them.
#include "scenarios/scenario.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/streaming_detector.h"
#include "daemon/daemon.h"

namespace rloop::scenarios {
namespace {

// One execution per canned scenario for the whole binary: the gate tests,
// the daemon tests and the ring test all score the same deterministic run.
const ScenarioRun& cached_run(const std::string& name) {
  static std::map<std::string, std::unique_ptr<ScenarioRun>> runs;
  auto it = runs.find(name);
  if (it == runs.end()) {
    it = runs.emplace(name, run_scenario(canned_scenario(name))).first;
  }
  return *it->second;
}

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

void expect_gates_pass(const std::string& name) {
  const ScenarioRun& run = cached_run(name);
  const ScenarioEvaluation eval = evaluate_scenario(run);

  EXPECT_TRUE(eval.pass) << join(eval.failures);
  EXPECT_TRUE(eval.offline_identical);
  ASSERT_NE(eval.find("serial"), nullptr);
  ASSERT_NE(eval.find("streaming"), nullptr);

  const ScenarioScore& serial = eval.find("serial")->score;
  if (run.spec.truth.expect_loops) {
    // The gate is not vacuous: the scenario really produced tap-visible
    // loops for the detectors to find.
    EXPECT_GT(serial.detectable, 0u) << name;
  } else {
    EXPECT_EQ(serial.truth_loops, 0u) << name;
    for (const PathOutcome& path : eval.paths) {
      EXPECT_EQ(path.score.reports, 0u) << name << "/" << path.path;
    }
  }
  for (const PathOutcome& path : eval.paths) {
    EXPECT_DOUBLE_EQ(path.score.recall(), 1.0) << name << "/" << path.path;
  }
}

TEST(ScenarioGate, LoopFreeControl) { expect_gates_pass("loop_free_control"); }
TEST(ScenarioGate, FlashCrowd) { expect_gates_pass("flash_crowd"); }
TEST(ScenarioGate, DdosBurst) { expect_gates_pass("ddos_burst"); }
TEST(ScenarioGate, LinkFlapStorm) { expect_gates_pass("link_flap_storm"); }
TEST(ScenarioGate, PersistentVsTransient) {
  expect_gates_pass("persistent_vs_transient");
}
TEST(ScenarioGate, MultiFailureConvergence) {
  expect_gates_pass("multi_failure_convergence");
}
TEST(ScenarioGate, AsymmetricBidir) { expect_gates_pass("asymmetric_bidir"); }
TEST(ScenarioGate, ReorderAndLoss) {
  // The pinned-seed gate for the reorder_loss_stress scenario. The name
  // avoids "Stress" so the *Stress* ctest split keeps it in the fast tier.
  expect_gates_pass("reorder_loss_stress");
}

TEST(ScenarioTruth, CannedSuiteIsComplete) {
  const auto& names = canned_scenario_names();
  EXPECT_EQ(names.size(), 8u);
  for (const auto& name : names) {
    const ScenarioSpec spec = canned_scenario(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.summary.empty()) << name;
    EXPECT_FALSE(spec.phases.empty()) << name;
    EXPECT_NE(spec.seed, 0u) << name;
  }
  EXPECT_THROW(canned_scenario("no_such_scenario"), std::invalid_argument);
}

// The bidirectional scenario must actually exercise the reverse path: a
// second tap, reverse crossings, and a scored "reverse" outcome.
TEST(ScenarioTruth, BidirectionalRunsReversePath) {
  const ScenarioRun& run = cached_run("asymmetric_bidir");
  EXPECT_FALSE(run.reverse_crossings.empty());
  const ScenarioEvaluation eval = evaluate_scenario(run);
  const PathOutcome* reverse = eval.find("reverse");
  ASSERT_NE(reverse, nullptr);
  EXPECT_GT(reverse->score.detectable, 0u);
  EXPECT_DOUBLE_EQ(reverse->score.recall(), 1.0);
}

// One seed pins everything: a scenario run twice produces byte-identical
// evaluations (same truth, same report lines, same JSON artifact).
TEST(ScenarioTruth, DeterministicFromSeed) {
  const ScenarioSpec spec = canned_scenario("flash_crowd");
  const auto a = run_scenario(spec);
  const auto b = run_scenario(spec);
  ASSERT_EQ(a->analysis_trace().size(), b->analysis_trace().size());
  EXPECT_EQ(evaluate_scenario(*a).to_json(), evaluate_scenario(*b).to_json());
}

// Changing the seed changes the run — the determinism above is not the
// engine ignoring the seed.
TEST(ScenarioTruth, SeedActuallyThreadsThrough) {
  ScenarioSpec spec = canned_scenario("flash_crowd");
  spec.seed = spec.seed + 1;
  const auto other = run_scenario(spec);
  EXPECT_NE(cached_run("flash_crowd").analysis_trace().size(),
            other->analysis_trace().size());
}

// The daemon wrapped around a scenario replay raises exactly the alerts the
// bare streaming detector raises — the ring, batching and producer thread
// are invisible to detection semantics.
TEST(ScenarioDaemon, DaemonMatchesStreamingPath) {
  const ScenarioRun& run = cached_run("ddos_burst");
  const ScenarioEvaluation eval = evaluate_scenario(run);
  const PathOutcome* streaming = eval.find("streaming");
  ASSERT_NE(streaming, nullptr);

  daemon::DaemonConfig config;
  config.streaming = scenario_streaming_config(run.spec);
  config.back_pressure = daemon::BackPressure::block;
  std::vector<std::string> lines;
  daemon::Daemon d(std::move(config),
                   std::make_unique<daemon::ReplaySource>(
                       &run.analysis_trace(), "scenario:ddos_burst", 0.0),
                   [&](const core::LoopAlert& alert) {
                     lines.push_back(render_alert(alert));
                   });
  const daemon::DaemonStats stats = d.run();

  EXPECT_TRUE(stats.invariant_ok());
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.pushed, run.analysis_trace().size());
  EXPECT_EQ(lines, streaming->lines);
}

// Overload a small ring with the link-flap scenario in drop-newest mode,
// with a deterministic push/pop interleaving (4 pushes then a 3-record
// drain per tick, so the ring fills and then sheds exactly one record per
// tick). Asserts the drop ledger balances exactly and that detection stays
// at 100% recall over the ground truth of the records that were actually
// consumed — drops shrink what is detectable, never what is detected.
TEST(ScenarioDaemon, DropNewestLedgerAndConsumedSubsetRecall) {
  const ScenarioRun& run = cached_run("link_flap_storm");
  const net::Trace& trace = run.analysis_trace();
  // Single unstressed tap: record i <-> crossing i, so the consumed-record
  // set maps straight onto a ground-truth subset.
  ASSERT_EQ(trace.size(), run.crossings.size());

  daemon::SpscRing<net::TraceRecord> ring(64);
  std::vector<core::LoopAlert> alerts;
  core::StreamingDetector detector(
      scenario_streaming_config(run.spec),
      [&](const core::LoopAlert& alert) { alerts.push_back(alert); });

  std::vector<sim::LoopCrossing> consumed_truth;
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t consumed = 0;
  net::TraceRecord batch[3];
  auto drain = [&](std::size_t max) {
    const std::size_t n = ring.pop_batch(batch, max);
    for (std::size_t j = 0; j < n; ++j) {
      detector.on_packet(batch[j].ts, batch[j].bytes());
    }
    consumed += n;
  };

  for (std::size_t i = 0; i < trace.size();) {
    for (int k = 0; k < 4 && i < trace.size(); ++k, ++i) {
      ++pushed;
      if (ring.try_push(trace[i])) {
        // FIFO and fully drained below, so every accepted record is
        // eventually consumed: accepted set == consumed set.
        consumed_truth.push_back(run.crossings[i]);
      } else {
        ++dropped;
      }
    }
    drain(3);
  }
  while (!ring.empty()) drain(3);

  EXPECT_EQ(pushed, trace.size());
  EXPECT_EQ(pushed, consumed + dropped);  // the daemon ledger invariant
  EXPECT_GT(dropped, 0u);                 // the overload was real
  EXPECT_EQ(consumed, consumed_truth.size());

  const ScenarioScore score = score_streaming(run, consumed_truth, alerts);
  EXPECT_GT(score.detectable, 0u);
  EXPECT_EQ(score.detected, score.detectable);  // 100% recall on consumed
  EXPECT_GE(score.precision(), run.spec.truth.precision_floor_streaming);
}

// Same overload through the real two-thread daemon. The drop pattern is
// scheduling-dependent there, so only scheduling-independent facts are
// asserted: the ledger balances and every source record is accounted for.
TEST(ScenarioDaemon, DropNewestDaemonLedgerInvariant) {
  const ScenarioRun& run = cached_run("link_flap_storm");

  daemon::DaemonConfig config;
  config.streaming = scenario_streaming_config(run.spec);
  config.back_pressure = daemon::BackPressure::drop_newest;
  config.ring_capacity = 64;
  config.batch_size = 16;
  std::size_t alerts = 0;
  daemon::Daemon d(std::move(config),
                   std::make_unique<daemon::ReplaySource>(
                       &run.analysis_trace(), "scenario:link_flap_storm", 0.0),
                   [&](const core::LoopAlert&) { ++alerts; });
  const daemon::DaemonStats stats = d.run();

  EXPECT_EQ(stats.pushed, run.analysis_trace().size());
  EXPECT_TRUE(stats.invariant_ok());
  EXPECT_EQ(stats.consumed + stats.dropped, stats.pushed);
}

// --- slow-label sweeps (names carry "Stress"; `ctest -LE slow` skips) ------

// Off the pinned seeds the recall/precision gates are not promised, but the
// engine's structural invariants are: serial and parallel report lines stay
// byte-identical, and the whole evaluation is reproducible from the seed.
TEST(ScenarioStress, OfflineIdenticalAcrossAlternateSeeds) {
  for (const auto& name : canned_scenario_names()) {
    for (const std::uint64_t seed : {7ull, 20260808ull}) {
      ScenarioSpec spec = canned_scenario(name);
      spec.seed = seed;
      const auto run = run_scenario(spec);
      const ScenarioEvaluation eval = evaluate_scenario(*run);
      EXPECT_TRUE(eval.offline_identical) << name << " seed " << seed;
      EXPECT_EQ(eval.to_json(), evaluate_scenario(*run).to_json())
          << name << " seed " << seed;
    }
  }
}

// A 3x arrival-rate flash crowd: the paths must still agree with each other
// and the daemon must still account for every record, whatever the loop
// census looks like at this load.
TEST(ScenarioStress, HighRateFlashCrowdInvariants) {
  ScenarioSpec spec = canned_scenario("flash_crowd");
  spec.flows_per_second *= 3.0;
  const auto run = run_scenario(spec);
  const ScenarioEvaluation eval = evaluate_scenario(*run);
  EXPECT_TRUE(eval.offline_identical);

  daemon::DaemonConfig config;
  config.streaming = scenario_streaming_config(run->spec);
  config.back_pressure = daemon::BackPressure::drop_newest;
  config.ring_capacity = 256;
  daemon::Daemon d(std::move(config),
                   std::make_unique<daemon::ReplaySource>(
                       &run->analysis_trace(), "scenario:flash_crowd", 0.0),
                   [](const core::LoopAlert&) {});
  const daemon::DaemonStats stats = d.run();
  EXPECT_EQ(stats.pushed, run->analysis_trace().size());
  EXPECT_TRUE(stats.invariant_ok());
}

}  // namespace
}  // namespace rloop::scenarios
