#include "net/checksum.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "util/random.h"

namespace rloop::net {
namespace {

std::vector<std::byte> bytes(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  for (unsigned v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, SingleWord) {
  const auto data = bytes({0x12, 0x34});
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0x1234));
}

TEST(Checksum, OddLengthPadsWithZero) {
  // Trailing byte 0xAB contributes 0xAB00.
  const auto data = bytes({0x12, 0x34, 0xab});
  EXPECT_EQ(internet_checksum(data),
            static_cast<std::uint16_t>(~(0x1234 + 0xab00)));
}

TEST(Checksum, CarryFolding) {
  // 0xFFFF + 0x0001 = 0x10000 -> folds to 0x0001 -> checksum ~1.
  const auto data = bytes({0xff, 0xff, 0x00, 0x01});
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0x0001));
}

TEST(Checksum, Rfc1071ExampleHeader) {
  // Classic worked example: an IPv4 header whose checksum field is 0xb861.
  const auto header = bytes({0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                             0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
                             0xc0, 0xa8, 0x00, 0xc7});
  EXPECT_EQ(internet_checksum(header), 0xb861);
}

TEST(Checksum, VerifiesToZeroWithChecksumInPlace) {
  auto header = bytes({0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                       0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8, 0x00, 0x01,
                       0xc0, 0xa8, 0x00, 0xc7});
  // Sum over a header including its correct checksum folds to 0xffff, so the
  // final complement is 0.
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(IncrementalChecksum, MatchesFullRecomputeForTtlDecrement) {
  Ipv4Header h;
  h.src = Ipv4Addr(192, 168, 0, 1);
  h.dst = Ipv4Addr(10, 1, 2, 3);
  h.ttl = 64;
  h.protocol = 6;
  h.total_length = 1500;
  h.id = 777;
  h.checksum = h.compute_checksum();

  for (int step = 0; step < 60; ++step) {
    const std::uint16_t old_word =
        static_cast<std::uint16_t>((std::uint16_t{h.ttl} << 8) | h.protocol);
    h.ttl -= 1;
    const std::uint16_t new_word =
        static_cast<std::uint16_t>((std::uint16_t{h.ttl} << 8) | h.protocol);
    h.checksum = incremental_checksum_update(h.checksum, old_word, new_word);
    ASSERT_EQ(h.checksum, h.compute_checksum()) << "after step " << step;
  }
}

TEST(IncrementalChecksum, RandomWordChangesMatchRecompute) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Ipv4Header h;
    h.src = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    h.dst = Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())};
    h.ttl = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    h.protocol = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    h.total_length = static_cast<std::uint16_t>(rng.uniform_int(20, 65535));
    h.id = static_cast<std::uint16_t>(rng.next_u64());
    h.checksum = h.compute_checksum();

    // Change the ID field (a 16-bit word) and update incrementally.
    const std::uint16_t old_id = h.id;
    h.id = static_cast<std::uint16_t>(rng.next_u64());
    h.checksum = incremental_checksum_update(h.checksum, old_id, h.id);
    ASSERT_EQ(h.checksum, h.compute_checksum()) << "trial " << trial;
  }
}

TEST(PseudoHeader, SumMatchesManualComputation) {
  const std::uint32_t src = 0xc0a80001;  // 192.168.0.1
  const std::uint32_t dst = 0x0a010203;  // 10.1.2.3
  const std::uint32_t sum = pseudo_header_sum(src, dst, 17, 28);
  EXPECT_EQ(sum, (0xc0a8u + 0x0001u + 0x0a01u + 0x0203u + 17u + 28u));
}

TEST(FoldChecksum, FoldsMultipleCarries) {
  // 0x0001ffff -> 0xffff + 0x0001 = 0x10000 -> 0x0000 + 0x0001 = 0x0001.
  EXPECT_EQ(fold_checksum(0x0001ffff), static_cast<std::uint16_t>(~0x0001));
  EXPECT_EQ(fold_checksum(0x00020003),
            static_cast<std::uint16_t>(~0x0005));
}

}  // namespace
}  // namespace rloop::net
