#include "net/packet.h"

#include <gtest/gtest.h>

#include <array>

#include "net/checksum.h"

namespace rloop::net {
namespace {

const Ipv4Addr kSrc(198, 51, 100, 10);
const Ipv4Addr kDst(203, 0, 113, 20);

TEST(MakeTcpPacket, FieldsAndChecksums) {
  const auto pkt =
      make_tcp_packet(kSrc, kDst, 40000, 80, /*seq=*/123, /*ack=*/456,
                      kTcpSyn, /*payload_len=*/0, /*ttl=*/64, /*ip_id=*/9);
  EXPECT_EQ(pkt.ip.total_length, kIpv4HeaderSize + kTcpHeaderSize);
  EXPECT_EQ(pkt.ip.protocol, static_cast<std::uint8_t>(IpProto::tcp));
  EXPECT_TRUE(pkt.ip.checksum_valid());
  ASSERT_NE(pkt.tcp(), nullptr);
  EXPECT_TRUE(pkt.tcp()->has(kTcpSyn));
  EXPECT_EQ(pkt.transport_checksum(), pkt.tcp()->checksum);
}

TEST(MakeUdpPacket, LengthIncludesPayload) {
  const auto pkt = make_udp_packet(kSrc, kDst, 1111, 53, /*payload_len=*/100,
                                   /*ttl=*/128, /*ip_id=*/10);
  EXPECT_EQ(pkt.ip.total_length, kIpv4HeaderSize + kUdpHeaderSize + 100);
  ASSERT_NE(pkt.udp(), nullptr);
  EXPECT_EQ(pkt.udp()->length, kUdpHeaderSize + 100);
  EXPECT_TRUE(pkt.ip.checksum_valid());
  EXPECT_NE(pkt.udp()->checksum, 0);  // RFC 768: 0 means "no checksum"
}

TEST(MakeIcmpPacket, EchoRequestFields) {
  const auto pkt =
      make_icmp_packet(kSrc, kDst, IcmpType::echo_request, 0,
                       /*rest=*/0x00070001, /*payload_len=*/56, 64, 11);
  ASSERT_NE(pkt.icmp(), nullptr);
  EXPECT_EQ(pkt.icmp()->type, 8);
  EXPECT_EQ(pkt.ip.total_length, kIpv4HeaderSize + kIcmpHeaderSize + 56);
  EXPECT_TRUE(pkt.ip.checksum_valid());
}

TEST(SerializeParse, TcpRoundtrip) {
  const auto pkt = make_tcp_packet(kSrc, kDst, 40000, 80, 1, 2,
                                   kTcpAck | kTcpPsh, 512, 60, 77);
  std::array<std::byte, kMaxHeaderBytes> buf{};
  const auto n = serialize_packet(pkt, buf);
  EXPECT_EQ(n, kIpv4HeaderSize + kTcpHeaderSize);
  const auto parsed = parse_packet(std::span<const std::byte>(buf.data(), n));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST(SerializeParse, UdpRoundtrip) {
  const auto pkt = make_udp_packet(kSrc, kDst, 1234, 4321, 64, 32, 5);
  std::array<std::byte, kMaxHeaderBytes> buf{};
  const auto n = serialize_packet(pkt, buf);
  EXPECT_EQ(n, kIpv4HeaderSize + kUdpHeaderSize);
  const auto parsed = parse_packet(std::span<const std::byte>(buf.data(), n));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST(SerializeParse, IcmpRoundtrip) {
  const auto pkt =
      make_icmp_packet(kSrc, kDst, IcmpType::time_exceeded, 0, 0, 28, 255, 3);
  std::array<std::byte, kMaxHeaderBytes> buf{};
  const auto n = serialize_packet(pkt, buf);
  EXPECT_EQ(n, kIpv4HeaderSize + kIcmpHeaderSize);
  const auto parsed = parse_packet(std::span<const std::byte>(buf.data(), n));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST(SerializePacket, ThrowsOnSmallBuffer) {
  const auto pkt = make_tcp_packet(kSrc, kDst, 1, 2, 0, 0, 0, 0, 64, 1);
  std::array<std::byte, kIpv4HeaderSize> buf{};  // too small for IP+TCP
  EXPECT_THROW(serialize_packet(pkt, buf), std::invalid_argument);
}

TEST(ParsePacket, UnknownProtocolYieldsMonostate) {
  Ipv4Header h;
  h.total_length = 40;
  h.ttl = 12;
  h.protocol = 47;  // GRE: not decoded
  h.checksum = h.compute_checksum();
  std::array<std::byte, kIpv4HeaderSize> buf{};
  h.serialize(buf);
  const auto parsed = parse_packet(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tcp(), nullptr);
  EXPECT_EQ(parsed->udp(), nullptr);
  EXPECT_EQ(parsed->icmp(), nullptr);
  EXPECT_FALSE(parsed->transport_checksum().has_value());
}

TEST(ParsePacket, NonFirstFragmentHasNoTransport) {
  auto pkt = make_udp_packet(kSrc, kDst, 1, 2, 500, 64, 6);
  pkt.ip.fragment_offset = 100;
  pkt.ip.checksum = pkt.ip.compute_checksum();
  std::array<std::byte, kMaxHeaderBytes> buf{};
  const auto n = serialize_packet(pkt, buf);
  const auto parsed = parse_packet(std::span<const std::byte>(buf.data(), n));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->udp(), nullptr);  // offset != 0: bytes are payload
}

TEST(ParsePacket, TruncatedTransportYieldsMonostate) {
  const auto pkt = make_tcp_packet(kSrc, kDst, 1, 2, 0, 0, kTcpSyn, 0, 64, 1);
  std::array<std::byte, kMaxHeaderBytes> buf{};
  serialize_packet(pkt, buf);
  // Only 30 bytes captured: full IP header, partial TCP.
  const auto parsed =
      parse_packet(std::span<const std::byte>(buf.data(), 30));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tcp(), nullptr);
}

TEST(ParsePacket, RejectsGarbage) {
  std::array<std::byte, 8> buf{};
  EXPECT_FALSE(parse_packet(buf).has_value());
}

TEST(FinalizeTransportChecksum, DeterministicAcrossCalls) {
  auto a = make_tcp_packet(kSrc, kDst, 1, 2, 3, 4, kTcpAck, 100, 64, 42);
  auto b = a;
  finalize_transport_checksum(a);
  finalize_transport_checksum(b);
  EXPECT_EQ(a.tcp()->checksum, b.tcp()->checksum);
}

TEST(FinalizeTransportChecksum, PayloadLengthAffectsChecksum) {
  const auto a = make_udp_packet(kSrc, kDst, 1, 2, 10, 64, 1);
  const auto b = make_udp_packet(kSrc, kDst, 1, 2, 11, 64, 1);
  EXPECT_NE(a.udp()->checksum, b.udp()->checksum);
}

}  // namespace
}  // namespace rloop::net
