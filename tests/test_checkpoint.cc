// Checkpoint/restore tests: encode/decode roundtrip and determinism,
// corruption detection (a checkpoint is never trusted unverified), detector
// snapshot/restore equivalence, atomic file rotation, and the
// stop -> new-daemon resume path whose combined alert set must equal an
// uninterrupted run's.
#include "daemon/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/streaming_detector.h"
#include "daemon/daemon.h"
#include "daemon/packet_source.h"
#include "net/packet.h"
#include "trace_builder.h"

namespace rloop::daemon {
namespace {

namespace fs = std::filesystem;
using net::Ipv4Addr;
using rloop::testing::TraceBuilder;

std::string render(const core::LoopAlert& a) {
  std::ostringstream out;
  out << a.prefix24.to_string() << " first=" << a.first_seen
      << " raised=" << a.raised_at << " replicas=" << a.replicas
      << " delta=" << a.ttl_delta;
  return out.str();
}

// A trace with loop activity spread across its whole length, so cutting it
// anywhere leaves in-flight replica streams on both sides of the cut.
net::Trace make_loopy_trace() {
  TraceBuilder builder;
  builder.replica_stream(0, Ipv4Addr(203, 0, 113, 10), 60, 7, 8, 2,
                         net::kMillisecond);
  builder.replica_stream(3 * net::kMillisecond, Ipv4Addr(198, 18, 0, 10), 100,
                         8, 12, 3, net::kMillisecond);
  // A stream that STRADDLES the midpoint cut: only 2 replicas before it.
  builder.replica_stream(9 * net::kMillisecond, Ipv4Addr(192, 0, 2, 20), 80,
                         9, 6, 2, net::kMillisecond);
  for (int i = 0; i < 40; ++i) {
    builder.packet(i * net::kMillisecond / 2,
                   Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 1), 64,
                   static_cast<std::uint16_t>(100 + i));
  }
  // Late repeat on the first prefix: inside the hold-down, so a restore that
  // lost the hold-down table would double-alert here.
  builder.replica_stream(15 * net::kMillisecond, Ipv4Addr(203, 0, 113, 10),
                         50, 17, 5, 2, net::kMillisecond);
  return std::move(builder.trace());
}

CheckpointState make_state() {
  net::Trace trace = make_loopy_trace();
  core::StreamingDetector detector({}, nullptr);
  for (const auto& rec : trace.records()) {
    detector.on_packet(rec.ts, rec.bytes());
  }
  CheckpointState state;
  state.seq = 42;
  state.wall_unix_s = 1754600000;
  state.source_offset = trace.size();
  state.pushed = trace.size();
  state.consumed = trace.size();
  state.dropped = 0;
  state.epochs = 7;
  state.alerts = detector.alerts_raised();
  state.detector = detector.snapshot();
  return state;
}

void expect_states_equal(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.wall_unix_s, b.wall_unix_s);
  EXPECT_EQ(a.source_offset, b.source_offset);
  EXPECT_EQ(a.pushed, b.pushed);
  EXPECT_EQ(a.consumed, b.consumed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.detector.last_ts, b.detector.last_ts);
  EXPECT_EQ(a.detector.packets_seen, b.detector.packets_seen);
  EXPECT_EQ(a.detector.alerts_raised, b.detector.alerts_raised);
  EXPECT_EQ(a.detector.reordered, b.detector.reordered);
  EXPECT_EQ(a.detector.reorder_dropped, b.detector.reorder_dropped);
  EXPECT_EQ(a.detector.evicted, b.detector.evicted);
  EXPECT_EQ(a.detector.sampled_dropped, b.detector.sampled_dropped);
  EXPECT_EQ(a.detector.peak_open, b.detector.peak_open);
  EXPECT_EQ(a.detector.since_sweep, b.detector.since_sweep);
  ASSERT_EQ(a.detector.open.size(), b.detector.open.size());
  for (std::size_t i = 0; i < a.detector.open.size(); ++i) {
    const auto& [ka, ea] = a.detector.open[i];
    const auto& [kb, eb] = b.detector.open[i];
    EXPECT_TRUE(ka == kb) << "open entry " << i << " key mismatch";
    EXPECT_EQ(ea.first_ts, eb.first_ts);
    EXPECT_EQ(ea.last_ts, eb.last_ts);
    EXPECT_EQ(ea.last_ttl, eb.last_ttl);
    EXPECT_EQ(ea.replicas, eb.replicas);
    EXPECT_EQ(ea.last_delta, eb.last_delta);
    EXPECT_EQ(ea.prefix24, eb.prefix24);
  }
  ASSERT_EQ(a.detector.holddowns.size(), b.detector.holddowns.size());
  for (std::size_t i = 0; i < a.detector.holddowns.size(); ++i) {
    EXPECT_EQ(a.detector.holddowns[i].first, b.detector.holddowns[i].first);
    EXPECT_EQ(a.detector.holddowns[i].second, b.detector.holddowns[i].second);
  }
}

// Fresh per-test checkpoint directory.
std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/rloop_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(Checkpoint, EncodeDecodeRoundtripsEveryField) {
  const CheckpointState state = make_state();
  ASSERT_GT(state.detector.open.size(), 0u) << "state must be non-trivial";
  ASSERT_GT(state.detector.holddowns.size(), 0u);

  const std::string bytes = encode_checkpoint(state);
  CheckpointState decoded;
  std::string error;
  ASSERT_TRUE(decode_checkpoint(bytes, decoded, &error)) << error;
  expect_states_equal(state, decoded);
}

TEST(Checkpoint, EncodingIsDeterministic) {
  // Two detectors fed identically hold equal state; both must serialize to
  // the exact same bytes despite unordered_map iteration order.
  net::Trace trace = make_loopy_trace();
  auto feed = [&trace] {
    auto d = std::make_unique<core::StreamingDetector>(
        core::StreamingConfig{}, nullptr);
    for (const auto& rec : trace.records()) d->on_packet(rec.ts, rec.bytes());
    return d;
  };
  CheckpointState a, b;
  a.seq = b.seq = 1;
  a.detector = feed()->snapshot();
  b.detector = feed()->snapshot();
  EXPECT_EQ(encode_checkpoint(a), encode_checkpoint(b));
  EXPECT_EQ(encode_checkpoint(a), encode_checkpoint(a));
}

TEST(Checkpoint, CorruptionIsAlwaysDetected) {
  const CheckpointState state = make_state();
  const std::string good = encode_checkpoint(state);
  CheckpointState out;
  std::string error;

  // Every single-byte flip anywhere in the frame must be caught: header
  // fields break magic/version/size checks, payload bytes break the
  // checksum.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    EXPECT_FALSE(decode_checkpoint(bad, out, &error))
        << "flip at byte " << i << " went undetected";
  }
  // Truncation at any boundary, including mid-header.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                std::size_t{23}, good.size() / 2,
                                good.size() - 1}) {
    EXPECT_FALSE(decode_checkpoint(std::string_view(good).substr(0, cut), out,
                                   &error))
        << "truncation to " << cut << " bytes went undetected";
  }
  // Trailing garbage changes the frame size: reject, do not ignore.
  EXPECT_FALSE(decode_checkpoint(good + "x", out, &error));
  EXPECT_TRUE(decode_checkpoint(good, out, &error)) << error;
}

TEST(Checkpoint, UnknownVersionIsRejected) {
  std::string bytes = encode_checkpoint(make_state());
  bytes[4] = 99;  // version field (little-endian u32 at offset 4)
  CheckpointState out;
  std::string error;
  EXPECT_FALSE(decode_checkpoint(bytes, out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// The semantic core of crash safety: a restore()d detector fed the packets
// that followed the snapshot produces exactly the alerts the original
// produces — including hold-down suppressions that depend on pre-snapshot
// alert history.
TEST(Checkpoint, RestoredDetectorReproducesAlertsExactly) {
  net::Trace trace = make_loopy_trace();
  const std::size_t cut = trace.size() / 2;

  std::vector<std::string> original_alerts;
  core::StreamingDetector original(
      {}, [&](const core::LoopAlert& a) {
        original_alerts.push_back(render(a));
      });
  for (std::size_t i = 0; i < cut; ++i) {
    const auto& rec = trace.records()[i];
    original.on_packet(rec.ts, rec.bytes());
  }

  // Roundtrip the snapshot through the wire format, like a real restart.
  CheckpointState state;
  state.detector = original.snapshot();
  CheckpointState decoded;
  ASSERT_TRUE(decode_checkpoint(encode_checkpoint(state), decoded, nullptr));

  std::vector<std::string> restored_alerts = original_alerts;
  core::StreamingDetector restored(
      {}, [&](const core::LoopAlert& a) {
        restored_alerts.push_back(render(a));
      });
  restored.restore(decoded.detector);
  EXPECT_EQ(restored.packets_seen(), original.packets_seen());
  EXPECT_EQ(restored.open_entries(), original.open_entries());

  for (std::size_t i = cut; i < trace.size(); ++i) {
    const auto& rec = trace.records()[i];
    original.on_packet(rec.ts, rec.bytes());
    restored.on_packet(rec.ts, rec.bytes());
  }

  EXPECT_EQ(restored_alerts, original_alerts);
  EXPECT_EQ(restored.alerts_raised(), original.alerts_raised());
  EXPECT_EQ(restored.open_entries(), original.open_entries());
  ASSERT_FALSE(original_alerts.empty()) << "trace must alert after the cut";
}

TEST(Checkpoint, WriteLoadRoundtripAndPruning) {
  const std::string dir = temp_dir("rotate");
  std::string error;
  CheckpointState state = make_state();

  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    state.seq = seq;
    state.epochs = seq * 10;
    ASSERT_TRUE(write_checkpoint_file(dir, state, &error)) << error;
  }

  // Newest two survive (the previous snapshot outlives the next write).
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path().filename().string());
  }
  EXPECT_EQ(files.size(), 2u);

  CheckpointState loaded;
  ASSERT_TRUE(load_latest_checkpoint(dir, loaded, &error)) << error;
  EXPECT_EQ(loaded.seq, 5u);
  EXPECT_EQ(loaded.epochs, 50u);
}

TEST(Checkpoint, LoadSkipsCorruptNewestAndFallsBack) {
  const std::string dir = temp_dir("fallback");
  std::string error;
  CheckpointState state = make_state();
  state.seq = 1;
  ASSERT_TRUE(write_checkpoint_file(dir, state, &error)) << error;
  state.seq = 2;
  ASSERT_TRUE(write_checkpoint_file(dir, state, &error)) << error;

  // Corrupt the newest in place (torn write / bad sector): one flipped
  // payload byte.
  const std::string newest = dir + "/ckpt-2.rlck";
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(30);
    char c;
    f.seekg(30);
    f.get(c);
    f.seekp(30);
    f.put(static_cast<char>(c ^ 0xff));
  }

  CheckpointState loaded;
  ASSERT_TRUE(load_latest_checkpoint(dir, loaded, &error))
      << "must fall back to the older valid snapshot: " << error;
  EXPECT_EQ(loaded.seq, 1u);

  // Corrupt the older one too: now nothing verifies — cold start, not crash.
  const std::string older = dir + "/ckpt-1.rlck";
  {
    std::ofstream f(older, std::ios::binary | std::ios::trunc);
    f << "not a checkpoint";
  }
  EXPECT_FALSE(load_latest_checkpoint(dir, loaded, &error));
}

TEST(Checkpoint, MissingDirectoryIsColdStart) {
  CheckpointState loaded;
  std::string error;
  EXPECT_FALSE(load_latest_checkpoint(temp_dir("never_created"), loaded,
                                      &error));
}

// End-to-end resume: daemon A processes a prefix of the stream and writes a
// final checkpoint on graceful drain; daemon B starts against the FULL
// stream with the same checkpoint dir, restores, skips the consumed prefix,
// and handles the suffix. A's alerts + B's alerts must equal an
// uninterrupted run's, byte for byte.
TEST(Checkpoint, DaemonResumeMatchesUninterruptedRun) {
  net::Trace full = make_loopy_trace();
  const std::size_t cut = full.size() / 2;
  net::Trace prefix("prefix", 0);
  for (std::size_t i = 0; i < cut; ++i) {
    const auto& rec = full.records()[i];
    prefix.add(rec.ts, rec.bytes(), rec.wire_len);
  }

  DaemonConfig config;
  config.back_pressure = BackPressure::block;  // lossless: exact equality

  // Reference: one uninterrupted run.
  std::vector<std::string> expected;
  {
    Daemon d(config, std::make_unique<ReplaySource>(full, "full", 0),
             [&](const core::LoopAlert& a) { expected.push_back(render(a)); });
    const DaemonStats stats = d.run();
    ASSERT_TRUE(stats.invariant_ok());
    ASSERT_FALSE(d.restore_info().restored);
  }
  ASSERT_GE(expected.size(), 3u) << "trace must alert on both sides of cut";

  for (const bool use_ring : {true, false}) {
    SCOPED_TRACE(use_ring ? "ring" : "inline");
    config.use_ring = use_ring;
    config.checkpoint_dir =
        temp_dir(use_ring ? "resume_ring" : "resume_inline");

    std::vector<std::string> alerts;
    std::uint64_t consumed_by_a = 0;
    {
      Daemon a(config, std::make_unique<ReplaySource>(prefix, "prefix", 0),
               [&](const core::LoopAlert& al) {
                 alerts.push_back(render(al));
               });
      const DaemonStats stats = a.run();
      ASSERT_TRUE(stats.invariant_ok());
      ASSERT_FALSE(a.restore_info().restored);
      EXPECT_GE(stats.checkpoints_written, 1u)
          << "graceful drain must cut a final snapshot";
      consumed_by_a = stats.consumed;
    }
    ASSERT_EQ(consumed_by_a, cut);

    {
      Daemon b(config, std::make_unique<ReplaySource>(full, "full", 0),
               [&](const core::LoopAlert& al) {
                 alerts.push_back(render(al));
               });
      ASSERT_TRUE(b.restore_info().restored);
      EXPECT_EQ(b.restore_info().source_offset, cut);
      const DaemonStats stats = b.run();
      ASSERT_TRUE(stats.invariant_ok());
      EXPECT_EQ(stats.restored_seq, b.restore_info().seq);
      // Resumed ledger covers the whole stream: prefix (restored) + suffix.
      EXPECT_EQ(stats.consumed + stats.dropped, full.size());
    }

    EXPECT_EQ(alerts, expected)
        << "stop + resume must alert exactly like an uninterrupted run";
  }
}

// A checkpoint interval throttles snapshot frequency but the final drain
// snapshot is always cut, so resume never loses the tail.
TEST(Checkpoint, IntervalThrottlesButFinalSnapshotAlwaysLands) {
  net::Trace trace = make_loopy_trace();
  DaemonConfig config;
  config.use_ring = false;
  config.batch_size = 4;  // many epoch boundaries
  config.checkpoint_dir = temp_dir("interval");
  config.checkpoint_interval = 365LL * 24 * 3600 * net::kSecond;  // ~never

  Daemon d(config, std::make_unique<ReplaySource>(trace, "t", 0), nullptr);
  const DaemonStats stats = d.run();
  EXPECT_EQ(stats.checkpoints_written, 1u)
      << "only the forced final snapshot should land under a huge interval";

  CheckpointState loaded;
  std::string error;
  ASSERT_TRUE(load_latest_checkpoint(config.checkpoint_dir, loaded, &error))
      << error;
  EXPECT_EQ(loaded.source_offset, trace.size());
}

}  // namespace
}  // namespace rloop::daemon
