#include "core/replica_key.h"

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>

#include "net/packet.h"

namespace rloop::core {
namespace {

using net::Ipv4Addr;

std::array<std::byte, net::kMaxHeaderBytes> serialize(
    const net::ParsedPacket& pkt, std::size_t* len) {
  std::array<std::byte, net::kMaxHeaderBytes> buf{};
  *len = net::serialize_packet(pkt, buf);
  return buf;
}

net::ParsedPacket base_packet(std::uint8_t ttl, std::uint16_t ip_id) {
  return net::make_tcp_packet(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8),
                              1000, 80, 42, 43, net::kTcpAck, 100, ttl, ip_id);
}

ReplicaKey key_of(const net::ParsedPacket& pkt) {
  std::size_t len = 0;
  const auto buf = serialize(pkt, &len);
  return make_replica_key(std::span<const std::byte>(buf.data(), len));
}

TEST(ReplicaKey, TtlAndChecksumDifferencesAreMasked) {
  // Simulate a forwarding hop: decrement TTL, update checksum.
  auto original = base_packet(64, 7);
  auto replica = base_packet(60, 7);  // builders recompute the IP checksum
  EXPECT_NE(original.ip.ttl, replica.ip.ttl);
  EXPECT_NE(original.ip.checksum, replica.ip.checksum);
  EXPECT_EQ(key_of(original), key_of(replica));
  EXPECT_EQ(key_of(original).hash, key_of(replica).hash);
}

TEST(ReplicaKey, IpIdDistinguishesFlowPackets) {
  // Two packets of the same flow differ only in IP ID (and checksum).
  EXPECT_NE(key_of(base_packet(64, 7)), key_of(base_packet(64, 8)));
}

TEST(ReplicaKey, TransportChecksumParticipates) {
  // Same flow, same IP ID, different payload (-> different TCP checksum):
  // not replicas. Distinguish via seq which changes the checksum.
  const auto a = net::make_tcp_packet(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8),
                                      1000, 80, 42, 43, net::kTcpAck, 100, 64, 7);
  const auto b = net::make_tcp_packet(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8),
                                      1000, 80, 99, 43, net::kTcpAck, 100, 64, 7);
  EXPECT_NE(key_of(a), key_of(b));
}

TEST(ReplicaKey, DifferentLengthCapturesDiffer) {
  std::size_t len = 0;
  const auto pkt = base_packet(64, 7);
  const auto buf = serialize(pkt, &len);
  const auto full = make_replica_key(std::span<const std::byte>(buf.data(), len));
  const auto partial =
      make_replica_key(std::span<const std::byte>(buf.data(), len - 4));
  EXPECT_NE(full, partial);
}

TEST(ReplicaKey, ShortCapturesHandled) {
  // A capture shorter than the TTL offset cannot mask anything but must not
  // crash; keys of equal bytes still match.
  std::array<std::byte, 6> tiny{};
  tiny[0] = std::byte{0x45};
  const auto a = make_replica_key(tiny);
  const auto b = make_replica_key(tiny);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.len, 6);
}

TEST(ReplicaKey, HashRarelyCollidesAcrossDistinctPackets) {
  std::unordered_set<std::uint64_t> hashes;
  for (std::uint16_t id = 0; id < 2000; ++id) {
    hashes.insert(key_of(base_packet(64, id)).hash);
  }
  EXPECT_EQ(hashes.size(), 2000u);
}

}  // namespace
}  // namespace rloop::core
