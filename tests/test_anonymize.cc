#include "net/anonymize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "core/loop_detector.h"
#include "net/packet.h"
#include "trace_builder.h"
#include "util/random.h"

namespace rloop::net {
namespace {

using rloop::testing::TraceBuilder;

TEST(Anonymizer, Deterministic) {
  const Anonymizer a(42), b(42);
  const Ipv4Addr addr(198, 51, 100, 7);
  EXPECT_EQ(a.map(addr), b.map(addr));
  EXPECT_EQ(a.map(addr), a.map(addr));
}

TEST(Anonymizer, DifferentKeysDifferentMappings) {
  const Anonymizer a(1), b(2);
  int same = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const Ipv4Addr addr{i * 2654435761u};
    if (a.map(addr) == b.map(addr)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Anonymizer, Injective) {
  const Anonymizer anon(7);
  std::set<std::uint32_t> images;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    images.insert(anon.map(Ipv4Addr{i * 1048583u}).value);
  }
  EXPECT_EQ(images.size(), 4096u);
}

// The defining property: common prefix length is exactly preserved.
TEST(Anonymizer, PrefixPreserving) {
  const Anonymizer anon(99);
  auto common_bits = [](std::uint32_t a, std::uint32_t b) {
    for (int i = 0; i < 32; ++i) {
      if ((a ^ b) & (0x80000000u >> i)) return i;
    }
    return 32;
  };
  util::Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const Ipv4Addr x{static_cast<std::uint32_t>(rng.next_u64())};
    const Ipv4Addr y{static_cast<std::uint32_t>(rng.next_u64())};
    const int before = common_bits(x.value, y.value);
    const int after = common_bits(anon.map(x).value, anon.map(y).value);
    ASSERT_EQ(before, after)
        << x.to_string() << " / " << y.to_string() << " trial " << trial;
  }
}

TEST(Anonymizer, TraceRewriteKeepsChecksumsValid) {
  TraceBuilder builder;
  builder.packet(0, Ipv4Addr(203, 0, 113, 10), 64, 1);
  builder.packet(1000, Ipv4Addr(198, 18, 5, 9), 32, 2);
  const Anonymizer anon(1234);
  const auto anon_trace = anon.anonymize(builder.trace());

  ASSERT_EQ(anon_trace.size(), 2u);
  for (const auto& rec : anon_trace.records()) {
    const auto parsed = parse_packet(rec.bytes());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->ip.checksum_valid());
  }
  // Addresses actually changed.
  const auto first = parse_packet(anon_trace[0].bytes());
  EXPECT_NE(first->ip.dst, Ipv4Addr(203, 0, 113, 10));
}

TEST(Anonymizer, MalformedRecordsCopiedVerbatim) {
  TraceBuilder builder;
  builder.raw(0, std::vector<std::byte>(8, std::byte{0x5a}));
  const auto anon_trace = Anonymizer(5).anonymize(builder.trace());
  ASSERT_EQ(anon_trace.size(), 1u);
  EXPECT_EQ(anon_trace[0].bytes()[0], std::byte{0x5a});
}

TEST(Anonymizer, DetectionResultsInvariant) {
  // The headline guarantee: anonymizing a trace changes none of the loop
  // analysis (same streams, same loops, same TTL deltas).
  TraceBuilder builder;
  for (int i = 0; i < 200; ++i) {
    builder.packet(i * 5000, Ipv4Addr(198, 18, 0, 5), 64,
                   static_cast<std::uint16_t>(i));
  }
  builder.replica_stream(600'000, Ipv4Addr(203, 0, 113, 10), 60, 777, 10, 2,
                         net::kMillisecond);
  builder.replica_stream(2 * net::kSecond, Ipv4Addr(192, 0, 2, 33), 128, 778,
                         20, 3, 2 * net::kMillisecond);

  const auto plain = core::detect_loops(builder.trace());
  const auto anon_trace = Anonymizer(0xfeedface).anonymize(builder.trace());
  const auto anon = core::detect_loops(anon_trace);

  ASSERT_EQ(anon.raw_streams.size(), plain.raw_streams.size());
  ASSERT_EQ(anon.valid_streams.size(), plain.valid_streams.size());
  ASSERT_EQ(anon.loops.size(), plain.loops.size());
  // Loops are ordered by prefix, and prefixes are permuted by the mapping;
  // compare the (time, size, delta) signatures order-independently.
  auto signatures = [](const core::LoopDetectionResult& result) {
    std::vector<std::tuple<net::TimeNs, net::TimeNs, std::uint64_t, int>> sig;
    for (const auto& loop : result.loops) {
      sig.emplace_back(loop.start, loop.end, loop.replica_count,
                       loop.ttl_delta);
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(signatures(anon), signatures(plain));
}

}  // namespace
}  // namespace rloop::net
