#include "sim/link.h"

#include <gtest/gtest.h>

namespace rloop::sim {
namespace {

routing::Link make_spec(double bandwidth_bps, net::TimeNs prop,
                        int queue_cap) {
  routing::Link spec;
  spec.id = 0;
  spec.a = 0;
  spec.b = 1;
  spec.bandwidth_bps = bandwidth_bps;
  spec.prop_delay = prop;
  spec.queue_capacity_pkts = queue_cap;
  return spec;
}

TEST(SimLink, SerializationDelayMatchesBandwidth) {
  SimLink link(make_spec(1e9, 0, 10));  // 1 Gbps
  // 1250 bytes = 10000 bits -> 10 microseconds at 1 Gbps.
  EXPECT_EQ(link.serialization_delay(1250), 10 * net::kMicrosecond);
}

TEST(SimLink, SerializationDelayAtLeastOneNs) {
  SimLink link(make_spec(1e12, 0, 10));
  EXPECT_GE(link.serialization_delay(1), 1);
}

TEST(SimLink, IdleTransmitTiming) {
  SimLink link(make_spec(1e9, 5 * net::kMicrosecond, 10));
  SimLink::TxTiming timing;
  ASSERT_EQ(link.transmit(1000, 1250, 0, timing), SimLink::TxResult::ok);
  EXPECT_EQ(timing.depart, 1000 + 10 * net::kMicrosecond);
  EXPECT_EQ(timing.arrive, timing.depart + 5 * net::kMicrosecond);
}

TEST(SimLink, BackToBackPacketsQueue) {
  SimLink link(make_spec(1e9, 0, 10));
  SimLink::TxTiming first, second;
  ASSERT_EQ(link.transmit(0, 1250, 0, first), SimLink::TxResult::ok);
  ASSERT_EQ(link.transmit(0, 1250, 0, second), SimLink::TxResult::ok);
  // The second waits for the first's serialization.
  EXPECT_EQ(second.depart, first.depart + 10 * net::kMicrosecond);
}

TEST(SimLink, DirectionsAreIndependent) {
  SimLink link(make_spec(1e9, 0, 10));
  SimLink::TxTiming ab, ba;
  ASSERT_EQ(link.transmit(0, 1250, /*from=*/0, ab), SimLink::TxResult::ok);
  ASSERT_EQ(link.transmit(0, 1250, /*from=*/1, ba), SimLink::TxResult::ok);
  // Full duplex: the b->a packet does not queue behind the a->b one.
  EXPECT_EQ(ab.depart, ba.depart);
}

TEST(SimLink, DropsWhenQueueExceedsCapacity) {
  SimLink link(make_spec(1e9, 0, 3));
  SimLink::TxTiming timing;
  int ok = 0, dropped = 0;
  for (int i = 0; i < 10; ++i) {
    const auto result = link.transmit(0, 1250, 0, timing);
    if (result == SimLink::TxResult::ok) ++ok;
    else ++dropped;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GE(ok, 3);
  EXPECT_EQ(link.queue_drops(), static_cast<std::uint64_t>(dropped));
}

TEST(SimLink, QueueDrainsOverTime) {
  SimLink link(make_spec(1e9, 0, 2));
  SimLink::TxTiming timing;
  // Fill the queue at t=0 until a drop occurs.
  while (link.transmit(0, 1250, 0, timing) == SimLink::TxResult::ok) {
  }
  // Far in the future the queue has drained and transmission succeeds again.
  EXPECT_EQ(link.transmit(net::kSecond, 1250, 0, timing),
            SimLink::TxResult::ok);
}

TEST(SimLink, DownLinkRefusesTraffic) {
  SimLink link(make_spec(1e9, 0, 10));
  link.set_up(false);
  SimLink::TxTiming timing;
  EXPECT_EQ(link.transmit(0, 100, 0, timing), SimLink::TxResult::link_down);
  link.set_up(true);
  EXPECT_EQ(link.transmit(0, 100, 0, timing), SimLink::TxResult::ok);
}

}  // namespace
}  // namespace rloop::sim
