// Table II: number of routing loops — raw replica streams vs the merged
// routing loops they collapse into.
//
// The paper's point: "many replica streams ... typically merge well, and are
// caused by comparatively few routing loops."
#include <iostream>

#include "analysis/table.h"
#include "common.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Table II: number of routing loops",
      "many replica streams merge into comparatively few routing loops");

  analysis::TextTable table({"Trace", "Replica Streams", "Routing Loops",
                             "Streams/Loop", "Rejected (small)",
                             "Rejected (prefix)"});
  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const double ratio =
        result.loops.empty()
            ? 0.0
            : static_cast<double>(result.valid_streams.size()) /
                  static_cast<double>(result.loops.size());
    table.add_row({bench::cached_trace(k).link_name(),
                   std::to_string(result.valid_streams.size()),
                   std::to_string(result.loops.size()),
                   analysis::format_double(ratio, 1),
                   std::to_string(result.validation.rejected_too_small),
                   std::to_string(result.validation.rejected_prefix_conflict)});
  }
  table.print(std::cout);
  return 0;
}
