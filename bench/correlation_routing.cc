// Future-work reproduction: correlating detected loops with routing data.
//
// The paper's closing section: "we are extending our data collection
// techniques to include complete BGP and IS-IS routing data. This will
// enable ... explanations of the causes and effects of routing loops."
// Here the simulator's control-plane log plays that role: every detected
// loop is matched to its causing event, with onset latency (event -> first
// replica on the monitored link).
#include <cstdio>
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "common.h"
#include "correlate/correlate.h"
#include "core/loop_detector.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Correlation of detected loops with BGP/IS-IS routing data",
      "(paper future work) every loop should be explainable from the "
      "control-plane feed");

  analysis::TextTable table({"Trace", "Loops", "Explained", "BGP withdraw",
                             "BGP reannounce", "IGP", "Mean onset (s)"});
  for (int k = 1; k <= 4; ++k) {
    auto run = bench::fresh_run(k);
    const auto result = core::detect_loops(run->trace());
    const auto explanations = correlate::explain_loops(
        result.loops, run->network->control_log());
    const auto summary = correlate::summarize(explanations);

    const auto cause_count = [&](correlate::Cause cause) {
      return summary.by_cause[static_cast<int>(cause)];
    };
    table.add_row(
        {run->spec.name, std::to_string(summary.total),
         analysis::format_percent(summary.explained_fraction()),
         std::to_string(cause_count(correlate::Cause::bgp_withdrawal)),
         std::to_string(cause_count(correlate::Cause::bgp_reannounce)),
         std::to_string(cause_count(correlate::Cause::igp_link_down) +
                        cause_count(correlate::Cause::igp_link_up)),
         analysis::format_double(summary.mean_onset_latency_s, 2)});
  }
  table.print(std::cout);

  std::printf(
      "\nOnset latency is the gap between the routing event and the first\n"
      "replica on the tap: I-BGP propagation plus per-router processing and\n"
      "MRAI delay before the first pair of FIBs disagrees across the link.\n");
  return 0;
}
