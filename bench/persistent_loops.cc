// Future-work reproduction: persistent loops.
//
// The paper: "persistent loops arise for a number of reasons, perhaps most
// commonly router misconfiguration ... eliminating a persistent loop
// requires human intervention", and defers their analysis. This harness runs
// the canned `persistent_vs_transient` scenario (scenarios/scenario.h): a
// standing FIB misconfiguration injected amid ordinary BGP withdrawals, with
// tap-crossing ground truth. It shows the detector + classifier separating
// the two populations, the loss the standing loop inflicts on its prefix,
// and the scenario's precision/recall gates holding on every detector path.
#include <cstdio>

#include "common.h"
#include "core/classify.h"
#include "core/loop_detector.h"
#include "correlate/correlate.h"
#include "net/time.h"
#include "scenarios/scenario.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Persistent loops from router misconfiguration",
      "(paper future work) persistent loops are rare, long, and need human "
      "intervention; classifier separates them from transients");

  const auto spec = scenarios::canned_scenario("persistent_vs_transient");
  std::printf("scenario            : %s seed=%llu (%s)\n", spec.name.c_str(),
              static_cast<unsigned long long>(spec.seed),
              spec.summary.c_str());
  const auto run = scenarios::run_scenario(spec);

  const auto& trace = run->analysis_trace();
  const auto result = core::detect_loops(trace);

  // The scenario compresses operator time: the misconfiguration stands for
  // 70 s against transients of a few seconds, so the operational 5-minute
  // split scales down to 30 s here.
  core::ClassifierConfig classify_cfg;
  classify_cfg.persistent_threshold = 30 * net::kSecond;
  const auto classified = core::classify_loops(
      result.loops, trace.empty() ? 0 : trace.records().back().ts,
      classify_cfg);

  std::printf("\nloops detected      : %zu (%llu transient, %llu persistent)\n",
              result.loops.size(),
              static_cast<unsigned long long>(classified.transient),
              static_cast<unsigned long long>(classified.persistent));

  const auto explanations = correlate::explain_loops(
      result.loops, run->backbone->network->control_log());
  for (std::size_t i = 0; i < result.loops.size(); ++i) {
    if (classified.classes[i] != core::LoopClass::persistent) continue;
    const auto& loop = result.loops[i];
    std::printf(
        "persistent loop     : %s  %.1f min, %llu replicas, cause: %s\n",
        loop.prefix24.to_string().c_str(),
        net::to_seconds(loop.duration()) / 60.0,
        static_cast<unsigned long long>(loop.replica_count),
        correlate::cause_name(explanations[i].cause));
  }

  // Loss inflicted on the victim prefix while the misconfiguration stood.
  const auto victim = run->backbone->withdrawable.front();
  std::uint64_t victim_expired = 0;
  for (const auto& crossing : run->backbone->network->loop_crossings()) {
    if (crossing.dst_prefix24 == victim) ++victim_expired;
  }
  std::printf("victim prefix       : %s (%llu ground-truth crossings; all "
              "traffic blackholed while misconfigured)\n",
              victim.to_string().c_str(),
              static_cast<unsigned long long>(victim_expired));

  // The scenario's own gates: 100% recall over detectable truth loops and
  // pinned precision on the serial/parallel/streaming paths.
  const auto eval = scenarios::evaluate_scenario(*run);
  for (const auto& path : eval.paths) {
    std::printf("path %-10s       : reports=%llu recall=%.3f precision=%.3f\n",
                path.path.c_str(),
                static_cast<unsigned long long>(path.score.reports),
                path.score.recall(), path.score.precision());
  }
  std::printf("gates               : %s\n", eval.pass ? "pass" : "FAIL");
  for (const auto& failure : eval.failures) {
    std::printf("  gate failure      : %s\n", failure.c_str());
  }

  if (classified.persistent == 0) {
    std::printf("ERROR: expected at least one persistent loop\n");
    return 1;
  }
  return eval.pass ? 0 : 1;
}
