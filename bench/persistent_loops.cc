// Future-work reproduction: persistent loops.
//
// The paper: "persistent loops arise for a number of reasons, perhaps most
// commonly router misconfiguration ... eliminating a persistent loop
// requires human intervention", and defers their analysis. This harness
// injects a misconfiguration into Backbone 1 alongside the usual transient
// events and shows the detector + classifier separating the two
// populations, plus the loss a standing loop inflicts on its prefix.
#include <cstdio>

#include "common.h"
#include "core/classify.h"
#include "core/loop_detector.h"
#include "correlate/correlate.h"
#include "net/time.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Persistent loops from router misconfiguration",
      "(paper future work) persistent loops are rare, long, and need human "
      "intervention; classifier separates them from transients");

  auto spec = scenarios::backbone_spec(1);
  auto run = scenarios::build_backbone(spec);

  // The operator error: at t=1min, router Y gets a static route for one
  // withdrawable prefix pointing back up the tapped artery; "humans notice"
  // and fix it six minutes later — well past any protocol convergence time.
  const auto victim = run->withdrawable.front();
  run->network->inject_misconfiguration(victim, run->nodes.y,
                                        run->nodes.tap_link, net::kMinute);
  run->network->clear_misconfiguration(victim, run->nodes.y, 7 * net::kMinute);
  scenarios::execute(*run);

  const auto& trace = run->trace();
  const auto result = core::detect_loops(trace);
  const auto classified = core::classify_loops(
      result.loops, trace.empty() ? 0 : trace.records().back().ts);

  std::printf("\nloops detected      : %zu (%llu transient, %llu persistent)\n",
              result.loops.size(),
              static_cast<unsigned long long>(classified.transient),
              static_cast<unsigned long long>(classified.persistent));

  const auto explanations =
      correlate::explain_loops(result.loops, run->network->control_log());
  for (std::size_t i = 0; i < result.loops.size(); ++i) {
    if (classified.classes[i] != core::LoopClass::persistent) continue;
    const auto& loop = result.loops[i];
    std::printf(
        "persistent loop     : %s  %.1f min, %llu replicas, cause: %s\n",
        loop.prefix24.to_string().c_str(),
        net::to_seconds(loop.duration()) / 60.0,
        static_cast<unsigned long long>(loop.replica_count),
        correlate::cause_name(explanations[i].cause));
  }

  // Loss inflicted on the victim prefix while the misconfiguration stood.
  std::uint64_t victim_expired = 0;
  for (const auto& crossing : run->network->loop_crossings()) {
    if (crossing.dst_prefix24 == victim) ++victim_expired;
  }
  std::printf("victim prefix       : %s (%llu ground-truth crossings; all "
              "traffic blackholed while misconfigured)\n",
              victim.to_string().c_str(),
              static_cast<unsigned long long>(victim_expired));

  if (classified.persistent == 0) {
    std::printf("ERROR: expected at least one persistent loop\n");
    return 1;
  }
  return 0;
}
