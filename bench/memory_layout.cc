// Microbenchmarks (google-benchmark) for the hot-path memory overhaul:
// the flat-table/arena detector against the retained reference engine, the
// SoA RecordStore build, the flat NonLoopedIndex against the
// hash-map-of-vectors layout it replaced, and mmap vs streaming pcap ingest.
// The differential tests in tests/test_memory_layout.cc prove the outputs
// identical; these harnesses measure what the layout change buys.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "core/prefix_index.h"
#include "core/record.h"
#include "core/record_store.h"
#include "core/replica_detector.h"
#include "net/pcap.h"
#include "net/pcap_mmap.h"
#include "util/thread_pool.h"

using namespace rloop;

namespace {

const net::Trace& bench_trace() { return bench::cached_trace(3); }

const std::vector<core::ParsedRecord>& bench_records() {
  static const auto records = core::parse_trace(bench_trace());
  return records;
}

const core::RecordStore& bench_store() {
  static const auto store =
      core::RecordStore::build(bench_trace(), bench_records());
  return store;
}

// ---- Detection engine: reference (unordered_map of vectors) vs flat ----

void BM_DetectReference(benchmark::State& state) {
  const auto& trace = bench_trace();
  const auto& records = bench_records();
  const core::ReplicaDetector detector;
  for (auto _ : state) {
    auto streams = detector.detect_reference(trace, records);
    benchmark::DoNotOptimize(streams);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_DetectReference)->Unit(benchmark::kMillisecond);

void BM_DetectFlat(benchmark::State& state) {
  const auto& store = bench_store();
  const core::ReplicaDetector detector;
  for (auto _ : state) {
    auto streams = detector.detect(store);
    benchmark::DoNotOptimize(streams);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.size()));
}
BENCHMARK(BM_DetectFlat)->Unit(benchmark::kMillisecond);

// Store build included, so the comparison against BM_DetectReference (which
// starts from ParsedRecords, as the old pipeline did) is end-to-end fair.
void BM_DetectFlatWithStoreBuild(benchmark::State& state) {
  const auto& trace = bench_trace();
  const auto& records = bench_records();
  const core::ReplicaDetector detector;
  for (auto _ : state) {
    const auto store = core::RecordStore::build(trace, records);
    auto streams = detector.detect(store);
    benchmark::DoNotOptimize(streams);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_DetectFlatWithStoreBuild)->Unit(benchmark::kMillisecond);

void BM_DetectFlatSharded(benchmark::State& state) {
  const auto& store = bench_store();
  const core::ReplicaDetector detector;
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto streams = detector.detect_sharded(
        store, pool, static_cast<unsigned>(state.range(0)) * 4);
    benchmark::DoNotOptimize(streams);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.size()));
}
BENCHMARK(BM_DetectFlatSharded)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// ---- RecordStore build (the columnize stage) ----

void BM_RecordStoreBuild(benchmark::State& state) {
  const auto& trace = bench_trace();
  const auto& records = bench_records();
  for (auto _ : state) {
    auto store = core::RecordStore::build(trace, records);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RecordStoreBuild)->Unit(benchmark::kMillisecond);

void BM_RecordStoreBuildParallel(benchmark::State& state) {
  const auto& trace = bench_trace();
  const auto& records = bench_records();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto store = core::RecordStore::build_parallel(trace, records, pool);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RecordStoreBuildParallel)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---- NonLoopedIndex: flat sorted array vs the old hash-map layout ----

std::vector<bool> bench_membership() {
  const auto& records = bench_records();
  const core::ReplicaDetector detector;
  return core::stream_membership(records.size(),
                                 detector.detect(bench_store()));
}

void BM_IndexBuildFlat(benchmark::State& state) {
  const auto& records = bench_records();
  const auto member = bench_membership();
  for (auto _ : state) {
    core::NonLoopedIndex index(records, member);
    benchmark::DoNotOptimize(index.entry_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_IndexBuildFlat)->Unit(benchmark::kMillisecond);

// The layout NonLoopedIndex replaced, reconstructed for the comparison.
void BM_IndexBuildHashMap(benchmark::State& state) {
  const auto& records = bench_records();
  const auto member = bench_membership();
  for (auto _ : state) {
    std::unordered_map<net::Prefix, std::vector<net::TimeNs>> by_prefix;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!records[i].ok || member[i]) continue;
      by_prefix[records[i].dst24].push_back(records[i].ts);
    }
    benchmark::DoNotOptimize(by_prefix.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_IndexBuildHashMap)->Unit(benchmark::kMillisecond);

void BM_IndexQueryFlat(benchmark::State& state) {
  const auto& records = bench_records();
  const auto member = bench_membership();
  const core::NonLoopedIndex index(records, member);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = records[i];
    if (r.ok) {
      benchmark::DoNotOptimize(
          index.any_in(r.dst24, r.ts - net::kSecond, r.ts + net::kSecond));
    }
    i = (i + 997) % records.size();  // stride to defeat trivial caching
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexQueryFlat);

// ---- pcap ingest: streaming read vs mmap zero-copy ----

class PcapFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (path_.empty()) {
      path_ = (std::filesystem::temp_directory_path() /
               "rloop_bench_memory_layout.pcap")
                  .string();
      net::write_pcap(bench_trace(), path_);
    }
  }
  static std::string path_;
};
std::string PcapFixture::path_;

BENCHMARK_DEFINE_F(PcapFixture, ReadPcapStreaming)(benchmark::State& state) {
  for (auto _ : state) {
    auto trace = net::read_pcap(path_);
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_trace().size()));
}
BENCHMARK_REGISTER_F(PcapFixture, ReadPcapStreaming)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(PcapFixture, ReadPcapMmap)(benchmark::State& state) {
  for (auto _ : state) {
    auto trace = net::read_pcap_fast(path_);
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_trace().size()));
}
BENCHMARK_REGISTER_F(PcapFixture, ReadPcapMmap)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
