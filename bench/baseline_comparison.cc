// Baseline: passive trace-based detection vs traceroute-style probing.
//
// The paper argues (Section III) that end-to-end probing is error-prone for
// transient loops and cannot assess impact. With simulator ground truth we
// can make that quantitative: the prober (30 s sweeps from an ingress
// vantage, Paxson-style) catches only loops that happen to be in progress
// during a sweep of an affected prefix, while the passive detector sees
// every loop whose cycle crosses the monitored link.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "baseline/comparison.h"
#include "baseline/prober.h"
#include "common.h"
#include "core/loop_detector.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Baseline comparison: passive replica-stream detection vs "
      "traceroute-style probing",
      "probing misses most transient loops; the passive method sees all "
      "loops crossing its link, with no false positives");

  analysis::TextTable table({"Trace", "GT loops", "Passive recall",
                             "Passive precision", "Prober recall",
                             "Prober reports", "Probes sent"});

  for (int k = 1; k <= 4; ++k) {
    const auto spec = scenarios::backbone_spec(k);
    auto run = scenarios::build_backbone(spec);

    // Probe the withdrawable (loop-prone) prefixes from ingress I0.
    baseline::ProberConfig prober_cfg;
    prober_cfg.start = net::kSecond;
    prober_cfg.probe_interval = 30 * net::kSecond;
    prober_cfg.duration = spec.duration;
    std::vector<net::Prefix> targets(
        run->withdrawable.begin(),
        run->withdrawable.begin() +
            std::min<std::size_t>(run->withdrawable.size(), 24));
    baseline::TracerouteProber prober(prober_cfg, targets, run->nodes.i0);
    prober.install(*run->network);

    scenarios::execute(*run);

    const auto truth = run->truth_loops();
    const auto result = core::detect_loops(run->trace());
    const auto passive = baseline::score_passive(truth, result.loops,
                                                 2 * net::kSecond);
    const auto active = baseline::score_prober(truth, prober.observations(),
                                               2 * net::kSecond);

    table.add_row({spec.name, std::to_string(truth.size()),
                   analysis::format_percent(passive.recall()),
                   analysis::format_percent(passive.precision()),
                   analysis::format_percent(active.recall()),
                   std::to_string(active.reports),
                   std::to_string(prober.probes_sent())});
  }
  table.print(std::cout);
  std::printf(
      "\nNote: passive recall is bounded by which loop cycles cross the\n"
      "monitored link (the paper's method sees one link); the prober probes\n"
      "the loop-prone prefixes directly and still misses loops that resolve\n"
      "between its 30 s sweeps.\n");
  return 0;
}
