// Figure 2: TTL delta distribution of replica streams.
//
// Paper shape: the majority of streams have TTL delta 2 on Backbones 1-3
// (adjacent-router loops dominate because flooding reaches neighbors of the
// update frontier first); Backbone 4 splits ~55 % delta 2 / ~35 % delta 3.
#include <cstdio>

#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 2: TTL delta distribution",
      "delta 2 dominates everywhere; Backbone 4 splits ~55%/35% across "
      "deltas 2 and 3");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const auto hist = core::ttl_delta_distribution(result.valid_streams);
    std::printf("\n%s (%llu streams with a loop signature)\n",
                bench::cached_trace(k).link_name().c_str(),
                static_cast<unsigned long long>(hist.total()));
    if (hist.empty()) {
      std::printf("  (no replica streams)\n");
      continue;
    }
    std::printf("  delta  fraction\n");
    for (const auto& [delta, count] : hist.counts()) {
      std::printf("  %-6lld %.3f  %s\n", static_cast<long long>(delta),
                  hist.fraction(delta),
                  std::string(static_cast<std::size_t>(
                                  hist.fraction(delta) * 40),
                              '#')
                      .c_str());
    }
  }
  return 0;
}
