// Figure 9: CDF of routing loop duration (after merging replica streams).
//
// Paper shape: ~90 % of loops last under ten seconds on Backbones 3 and 4
// (IGP-style convergence of seconds), while Backbones 1 and 2 show a tail of
// much longer loops attributed to slow BGP convergence.
#include <cstdio>

#include "common.h"
#include "core/metrics.h"
#include "net/time.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 9: CDF of routing loop duration",
      "~90% of loops < 10 s on B3/B4; B1/B2 have a long (BGP) tail");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const auto cdf = core::loop_duration_cdf_s(result.loops);
    std::printf("\n%s: %zu loops\n",
                bench::cached_trace(k).link_name().c_str(),
                result.loops.size());
    if (cdf.empty()) continue;
    bench::print_cdf_summary("duration", cdf, "s");
    std::printf("  F(10s)=%.3f   longest=%.1fs\n",
                cdf.fraction_at_or_below(10.0), cdf.max());
    bench::print_cdf_series(cdf, "duration_s", 12);
  }
  return 0;
}
