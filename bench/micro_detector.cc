// Microbenchmarks (google-benchmark): throughput of the detector pipeline
// and its hot primitives. These bound the cost of running the method over
// backbone-scale traces (the paper processed traces of 10^8-10^9 packets
// offline).
#include <benchmark/benchmark.h>

#include <array>

#include "common.h"
#include "core/loop_detector.h"
#include "core/replica_detector.h"
#include "core/replica_key.h"
#include "core/streaming_detector.h"
#include "net/checksum.h"
#include "net/packet.h"
#include "routing/lpm_trie.h"
#include "telemetry/registry.h"
#include "util/random.h"

using namespace rloop;

namespace {

const net::Trace& bench_trace() { return bench::cached_trace(3); }

void BM_ParseTrace(benchmark::State& state) {
  const auto& trace = bench_trace();
  for (auto _ : state) {
    auto records = core::parse_trace(trace);
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ParseTrace)->Unit(benchmark::kMillisecond);

void BM_ReplicaDetect(benchmark::State& state) {
  const auto& trace = bench_trace();
  const auto records = core::parse_trace(trace);
  const core::ReplicaDetector detector;
  for (auto _ : state) {
    auto streams = detector.detect(trace, records);
    benchmark::DoNotOptimize(streams);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ReplicaDetect)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto& trace = bench_trace();
  for (auto _ : state) {
    auto result = core::detect_loops(trace);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

// Telemetry-overhead guard: same pipeline with a live registry. Compare
// items/s against BM_FullPipeline (the null-registry mode) — the gap is the
// cost of instrumentation and must stay under ~2%.
void BM_FullPipelineTelemetry(benchmark::State& state) {
  const auto& trace = bench_trace();
  telemetry::Registry registry;
  core::LoopDetectorConfig config;
  config.registry = &registry;
  for (auto _ : state) {
    auto result = core::detect_loops(trace, config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullPipelineTelemetry)->Unit(benchmark::kMillisecond);

// Tracing-overhead guard: pipeline with a span sink AND a decision journal
// attached. BM_FullPipeline is the disabled-path baseline (null sink = one
// predictable branch per span/decision site); the gap between the two pins
// the zero-overhead claim in the docs. Sink and journal are constructed
// outside the loop — they retain events across iterations (bounded by their
// capacities), matching how a real run holds one sink for a whole trace.
void BM_FullPipelineTraced(benchmark::State& state) {
  const auto& trace = bench_trace();
  telemetry::TraceSink sink;
  telemetry::DecisionLog journal;
  core::LoopDetectorConfig config;
  config.trace = &sink;
  config.journal = &journal;
  for (auto _ : state) {
    auto result = core::detect_loops(trace, config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullPipelineTraced)->Unit(benchmark::kMillisecond);

// Sharded pipeline at N threads (0 = serial path for a same-harness
// baseline). Output is bit-identical to serial; see bench/parallel_scaling
// for the dedicated speedup harness.
void BM_FullPipelineParallel(benchmark::State& state) {
  const auto& trace = bench_trace();
  core::LoopDetectorConfig config;
  config.parallel.num_threads = static_cast<unsigned>(state.range(0));
  config.parallel.shard_bits = 4;
  for (auto _ : state) {
    auto result = core::detect_loops(trace, config);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FullPipelineParallel)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StreamingDetector(benchmark::State& state) {
  const auto& trace = bench_trace();
  for (auto _ : state) {
    core::StreamingDetector detector({}, nullptr);
    for (const auto& rec : trace.records()) {
      detector.on_packet(rec.ts, rec.bytes());
    }
    benchmark::DoNotOptimize(detector.alerts_raised());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_StreamingDetector)->Unit(benchmark::kMillisecond);

// Telemetry-overhead guard for the per-packet streaming hot path (counter
// increments + open-entry gauge per packet).
void BM_StreamingDetectorTelemetry(benchmark::State& state) {
  const auto& trace = bench_trace();
  telemetry::Registry registry;
  for (auto _ : state) {
    core::StreamingDetector detector({}, nullptr, &registry);
    for (const auto& rec : trace.records()) {
      detector.on_packet(rec.ts, rec.bytes());
    }
    benchmark::DoNotOptimize(detector.alerts_raised());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_StreamingDetectorTelemetry)->Unit(benchmark::kMillisecond);

void BM_ReplicaKey(benchmark::State& state) {
  const auto pkt = net::make_tcp_packet(net::Ipv4Addr(1, 2, 3, 4),
                                        net::Ipv4Addr(5, 6, 7, 8), 1000, 80,
                                        42, 43, net::kTcpAck, 100, 64, 7);
  std::array<std::byte, net::kMaxHeaderBytes> buf{};
  const auto len = net::serialize_packet(pkt, buf);
  for (auto _ : state) {
    auto key = core::make_replica_key(
        std::span<const std::byte>(buf.data(), len));
    benchmark::DoNotOptimize(key);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReplicaKey);

void BM_InternetChecksum(benchmark::State& state) {
  std::array<std::byte, 1500> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_InternetChecksum);

void BM_IncrementalChecksum(benchmark::State& state) {
  std::uint16_t checksum = 0x1234;
  std::uint16_t word = 0x4006;
  for (auto _ : state) {
    checksum = net::incremental_checksum_update(
        checksum, word, static_cast<std::uint16_t>(word - 0x0100));
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalChecksum);

void BM_LpmLookup(benchmark::State& state) {
  routing::LpmTrie trie;
  util::Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    trie.insert(net::Prefix::of(
                    net::Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                    static_cast<std::uint8_t>(rng.uniform_int(8, 24))),
                static_cast<std::uint32_t>(i));
  }
  std::uint32_t probe = 0x12345678;
  for (auto _ : state) {
    probe = probe * 2654435761u + 1;
    benchmark::DoNotOptimize(trie.lookup(net::Ipv4Addr{probe}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LpmLookup)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
