// Figure 6: traffic type distribution of looped traffic.
//
// Paper shape: compared with Figure 5, SYN packets are over-represented in
// looped traffic (looped SYNs never establish connections, so no follow-on
// TCP traffic enters the loop, while UDP keeps sending), and ICMP is
// prominent (hosts ping/traceroute into the blackhole; routers emit
// time-exceeded).
#include <iostream>

#include "analysis/table.h"
#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 6: traffic type distribution, looped traffic",
      "SYN fraction higher than in all traffic; ICMP prominent in loops");

  analysis::TextTable table({"Type", "B1 all", "B1 looped", "B2 all",
                             "B2 looped", "B4 all", "B4 looped"});
  struct Pair {
    analysis::CategoricalCounter all, looped;
  };
  std::vector<Pair> mixes;
  for (int k : {1, 2, 4}) {
    const auto& result = bench::cached_result(k);
    mixes.push_back({core::traffic_type_mix(result.records),
                     core::looped_type_mix(result.records,
                                           result.valid_streams)});
  }
  for (const auto& cat : core::kTrafficCategories) {
    std::vector<std::string> row = {cat};
    for (const auto& mix : mixes) {
      row.push_back(analysis::format_percent(mix.all.fraction(cat)));
      row.push_back(mix.looped.total()
                        ? analysis::format_percent(mix.looped.fraction(cat))
                        : "-");
    }
    table.add_row(row);
  }
  table.print(std::cout);

  // The paper's SYN observation, made explicit.
  std::printf("\nSYN over-representation (looped SYN%% / all SYN%%):\n");
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const double all_syn = mixes[i].all.fraction("SYN");
    const double looped_syn = mixes[i].looped.fraction("SYN");
    if (all_syn > 0 && mixes[i].looped.total() > 0) {
      std::printf("  trace %zu: %.2fx\n", i, looped_syn / all_syn);
    }
  }
  return 0;
}
