// Figure 5: traffic type distribution of all traffic on the link.
//
// Paper shape: TCP takes more than 80 % of packets, UDP 5-15 %, SYN/FIN
// under 10 %, small ICMP and multicast slivers. (A packet can appear in
// several categories: a SYN-ACK counts under TCP, SYN and ACK.)
#include <iostream>

#include "analysis/table.h"
#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 5: traffic type distribution, all traffic",
      "TCP > 80%, UDP 5-15%, SYN/FIN < 10%, some ICMP and multicast");

  analysis::TextTable table({"Type", "Backbone 1", "Backbone 2", "Backbone 3",
                             "Backbone 4"});
  std::vector<analysis::CategoricalCounter> mixes;
  mixes.reserve(4);
  for (int k = 1; k <= 4; ++k) {
    mixes.push_back(core::traffic_type_mix(bench::cached_result(k).records));
  }
  for (const auto& cat : core::kTrafficCategories) {
    std::vector<std::string> row = {cat};
    for (const auto& mix : mixes) {
      row.push_back(analysis::format_percent(mix.fraction(cat)));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  return 0;
}
