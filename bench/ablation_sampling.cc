// Ablation: detection under packet sampling.
//
// The paper's monitors captured every packet. Production monitors often
// sample (1-in-N) under load. Because a looped packet leaves ~30-60
// replicas (initial TTL / delta), a stream keeps >= 3 sampled replicas with
// high probability even at aggressive sampling, so the method is far more
// robust than one might guess. The observed failure mode at very low rates
// is not missed loops but FRAGMENTATION: with few replicas per stream and
// few streams per loop, the merge step can no longer bridge gaps, and one
// loop splinters into several short ones (loop counts inflate while
// looped-packet counts fall linearly with the sampling rate).
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "common.h"
#include "core/loop_detector.h"
#include "net/trace.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Ablation: detection under per-packet sampling",
      "replica-stream detection needs the same packet captured repeatedly; "
      "sampling degrades it superlinearly");

  analysis::TextTable table({"Keep prob", "B1 streams", "B1 loops",
                             "B1 looped pkts", "B2 streams", "B2 loops"});

  for (const double keep : {1.0, 0.9, 0.75, 0.5, 0.25, 0.1}) {
    std::vector<std::string> row = {analysis::format_percent(keep, 0)};
    for (int k : {1, 2}) {
      const auto& full = bench::cached_trace(k);
      const auto sampled = net::sample_trace(full, keep, /*seed=*/77);
      const auto result = core::detect_loops(sampled);
      row.push_back(std::to_string(result.valid_streams.size()));
      row.push_back(std::to_string(result.loops.size()));
      if (k == 1) {
        row.push_back(std::to_string(result.looped_packet_records()));
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::printf(
      "\nInterpretation: stream and loop counts are stable down to ~25%%\n"
      "sampling (streams carry ~30-60 replicas, so >=3 survive). At ~10%%\n"
      "loops FRAGMENT: counts inflate as the merge step loses the evidence\n"
      "bridging one loop's streams. Looped-packet volume scales linearly\n"
      "with the sampling rate throughout.\n");
  return 0;
}
