// Parallel-pipeline scaling: serial vs N-thread throughput of the full
// detect_loops() chain (parse -> detect -> validate -> merge) on a backbone
// trace. The sharded path must keep output bit-identical (ctest enforces
// that); this harness records what the parallelism buys — the acceptance
// bar is >= 2.5x at 4 threads.
//
// Output ends with one machine-readable JSON line (picked up by benchmark
// collection) carrying records/s per thread count and speedups.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/loop_detector.h"
#include "core/pipeline.h"

using namespace rloop;

namespace {

double best_seconds(const net::Trace& trace,
                    const core::LoopDetectorConfig& config, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = core::detect_loops(trace, config);
    const auto t1 = std::chrono::steady_clock::now();
    // Consume the result so the compiler cannot elide the run.
    if (result.total_records != trace.size()) std::abort();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Parallel scaling: sharded pipeline throughput",
      "output bit-identical to serial; >= 2.5x records/s at 4 threads");

  // Backbone 3 is the largest standard trace; concatenating all four
  // scenarios' records would change nothing about scaling shape, so one
  // trace keeps the harness honest and fast.
  const auto& trace = bench::cached_trace(3);
  const auto records = static_cast<double>(trace.size());
  constexpr int kReps = 5;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  core::LoopDetectorConfig serial_config;
  const double serial_s = best_seconds(trace, serial_config, kReps);
  const double serial_tput = records / serial_s;
  std::printf("\n  records: %zu\n", trace.size());
  std::printf("  hardware threads: %u\n", hw_threads);
  std::printf("  serial      : %8.2f ms   %10.0f records/s\n",
              serial_s * 1e3, serial_tput);

  std::string json = "{\"bench\":\"parallel_scaling\",\"records\":" +
                     std::to_string(trace.size()) +
                     ",\"hardware_threads\":" + std::to_string(hw_threads) +
                     ",\"serial_records_per_s\":" + std::to_string(serial_tput);
  bool met_bar = false;
  // One workspace across thread counts: the staged dataflow reuses columns,
  // rings and detect states between repetitions (the pool rebuilds when the
  // thread count changes), so every rep after the first measures warm
  // steady state — the configuration the daemon and CI gate care about.
  core::PipelineWorkspace workspace;
  for (const unsigned threads : {2u, 4u, 8u}) {
    core::LoopDetectorConfig config;
    config.parallel.num_threads = threads;
    config.parallel.shard_bits = 4;
    config.workspace = &workspace;
    const double s = best_seconds(trace, config, kReps);
    const double tput = records / s;
    const double speedup = serial_s / s;
    std::printf("  %u threads   : %8.2f ms   %10.0f records/s   %.2fx\n",
                threads, s * 1e3, tput, speedup);
    json += ",\"threads_" + std::to_string(threads) +
            "_records_per_s\":" + std::to_string(tput) + ",\"speedup_" +
            std::to_string(threads) + "\":" + std::to_string(speedup);
    if (threads == 4 && speedup >= 2.5) met_bar = true;
  }
  // A 2.5x speedup at 4 threads needs at least 4 hardware threads; on
  // smaller machines (CI containers are often 1-2 vCPUs) the sharded path
  // can only time-slice one core and the bar is unattainable, so record
  // that the hardware — not the pipeline — capped the result.
  const bool bar_attainable = hw_threads >= 4;
  json += ",\"met_4thread_bar\":" + std::string(met_bar ? "true" : "false") +
          ",\"bar_attainable\":" +
          std::string(bar_attainable ? "true" : "false") + "}";
  std::printf("\n  4-thread >= 2.5x bar: %s%s\n", met_bar ? "MET" : "MISSED",
              bar_attainable
                  ? ""
                  : " (unattainable here: fewer than 4 hardware threads)");
  std::printf("%s\n", json.c_str());
  return 0;
}
