// Extension experiment: monitoring BOTH directions of the looped link.
//
// The paper's monitors were uni-directional (each trace covers one direction
// of one link). A two-router loop X<->Y crosses the link in BOTH directions
// every turn, so a reverse-direction monitor sees the same loop as its own
// replica streams — same prefix, interleaved timestamps, TTLs offset by one
// hop. This harness taps both directions of Backbone 1's artery and checks
// that the two independent detectors agree on the loop population, which is
// (a) a strong internal consistency check on the whole pipeline and (b) a
// quantitative argument that one direction suffices for loop COUNTING even
// though it halves the replica evidence.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "common.h"
#include "core/loop_detector.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Extension: bidirectional monitoring of the looped link",
      "a 2-router loop crosses its link both ways: independent forward and "
      "reverse monitors must agree");

  const auto spec = scenarios::backbone_spec(1);
  auto run = scenarios::build_backbone(spec);
  // Reverse-direction tap on the same artery (the forward tap exists
  // already as tap 0).
  const auto reverse_tap = run->network->add_tap(
      run->nodes.tap_link,
      run->network->topology().link(run->nodes.tap_link).other(run->nodes.x),
      spec.name + " (reverse)", spec.epoch_unix_s);
  scenarios::execute(*run);

  const auto forward = core::detect_loops(run->trace());
  const auto reverse = core::detect_loops(run->network->tap_trace(reverse_tap));

  analysis::TextTable table({"Direction", "Packets", "Replica streams",
                             "Loops", "Looped packets"});
  table.add_row({"X -> Y (paper-style)", std::to_string(run->trace().size()),
                 std::to_string(forward.valid_streams.size()),
                 std::to_string(forward.loops.size()),
                 std::to_string(forward.looped_packet_records())});
  table.add_row({"Y -> X (reverse)",
                 std::to_string(run->network->tap_trace(reverse_tap).size()),
                 std::to_string(reverse.valid_streams.size()),
                 std::to_string(reverse.loops.size()),
                 std::to_string(reverse.looped_packet_records())});
  table.print(std::cout);

  // Agreement: loops found in one direction matched by prefix+overlap in
  // the other.
  std::size_t matched = 0;
  for (const auto& f : forward.loops) {
    for (const auto& r : reverse.loops) {
      if (f.prefix24 == r.prefix24 && f.start <= r.end + net::kSecond &&
          r.start <= f.end + net::kSecond) {
        ++matched;
        break;
      }
    }
  }
  std::printf(
      "\nforward loops matched by a reverse-direction loop: %zu / %zu\n",
      matched, forward.loops.size());
  std::printf(
      "note: the reverse monitor sees almost exclusively looped traffic\n"
      "(normal traffic on this artery is one-directional), so its trace is\n"
      "tiny but its loop count matches — corroborating the paper's claim\n"
      "that one uni-directional monitor suffices to enumerate loops on its\n"
      "link.\n");
  return 0;
}
