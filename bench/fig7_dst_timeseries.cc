// Figure 7: destination addresses of replica streams over time.
//
// Paper shape: loops touch a wide spectrum of destination addresses over the
// trace, with more looped packets in the class-C range (192.0.0.0 upward).
// This harness prints the time series (bucketed) plus the address-class
// split of looped streams.
#include <cstdio>
#include <set>

#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 7: destination addresses of replica streams over time",
      "wide spread of affected addresses; class-C range over-represented");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const auto series = core::dst_timeseries(result.valid_streams);
    std::printf("\n%s: %zu streams\n",
                bench::cached_trace(k).link_name().c_str(), series.size());
    if (series.empty()) continue;

    std::uint64_t class_c = 0;
    std::uint64_t distinct_prefixes = 0;
    {
      std::set<std::uint32_t> prefixes;
      for (const auto& s : series) {
        if ((s.dst.value >> 24) >= 192 && (s.dst.value >> 24) <= 223) {
          ++class_c;
        }
        prefixes.insert(s.dst.value >> 8);
      }
      distinct_prefixes = prefixes.size();
    }
    std::printf("  distinct /24s affected : %llu\n",
                static_cast<unsigned long long>(distinct_prefixes));
    std::printf("  class-C share of streams: %.1f%%\n",
                100.0 * static_cast<double>(class_c) /
                    static_cast<double>(series.size()));

    std::printf("  time(s)   dst (first stream in each 30 s bucket)\n");
    double last_bucket = -1;
    for (const auto& s : series) {
      const double bucket = static_cast<double>(static_cast<int>(s.time_s / 30));
      if (bucket != last_bucket) {
        std::printf("  %-9.1f %s\n", s.time_s, s.dst.to_string().c_str());
        last_bucket = bucket;
      }
    }
  }
  return 0;
}
