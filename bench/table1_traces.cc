// Table I: details of traces — length, average bandwidth, packet count and
// number of looped packets per backbone link.
//
// Scale note: the simulated traces are minutes long (not hours) and Mbps
// (not the paper's OC-12 link rates); Table I's *relationships* are the
// reproduction target — Backbone 2 carries several times the packets of the
// others, looped-packet counts on Backbones 1 and 2 are similar in absolute
// terms but far smaller relative to Backbone 2's volume, and Backbones 3/4
// are quiet links with few looped packets.
#include <iostream>

#include "analysis/table.h"
#include "common.h"
#include "net/time.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Table I: details of traces",
      "B2 has much higher bandwidth; looped packets on B1 ~ B2 absolute, "
      "lower in relative terms on B2");

  analysis::TextTable table({"Trace", "Length (min)", "Avg BW (Mbps)",
                             "Packets", "Looped Packets", "Looped %"});
  for (int k = 1; k <= 4; ++k) {
    const auto& trace = bench::cached_trace(k);
    const auto& result = bench::cached_result(k);
    const double looped_fraction =
        trace.size() ? static_cast<double>(result.looped_packet_records()) /
                           static_cast<double>(trace.size())
                     : 0.0;
    table.add_row(
        {trace.link_name(),
         analysis::format_double(net::to_seconds(trace.duration()) / 60.0, 1),
         analysis::format_double(trace.average_bandwidth_mbps(), 2),
         std::to_string(trace.size()),
         std::to_string(result.looped_packet_records()),
         analysis::format_percent(looped_fraction, 2)});
  }
  table.print(std::cout);
  return 0;
}
