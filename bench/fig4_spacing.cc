// Figure 4: CDF of inter-replica spacing time.
//
// Paper shape: on Backbones 1/2 about 90 % of streams have mean spacing
// under 8 ms and almost all under 50 ms; Backbones 3/4 (long-haul links)
// sit at larger spacings; larger TTL deltas mean more hops per turn and
// hence larger spacing.
#include <cstdio>
#include <map>

#include "analysis/cdf.h"
#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 4: CDF of inter-replica spacing",
      "B1/B2: ~90% under 8 ms; B3/B4 larger (longer links); spacing grows "
      "with TTL delta");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const auto cdf = core::spacing_cdf_ms(result.valid_streams);
    std::printf("\n%s\n", bench::cached_trace(k).link_name().c_str());
    bench::print_cdf_summary("spacing", cdf, "ms");
    if (!cdf.empty()) {
      std::printf("  F(8ms)=%.3f  F(50ms)=%.3f\n",
                  cdf.fraction_at_or_below(8.0),
                  cdf.fraction_at_or_below(50.0));
    }
    // Per-delta breakdown: the spacing/hop-count relationship.
    std::map<int, analysis::EmpiricalCdf> by_delta;
    for (const auto& stream : result.valid_streams) {
      const int delta = stream.dominant_ttl_delta();
      if (delta > 0 && stream.size() >= 2) {
        by_delta[delta].add(stream.mean_spacing_ns() / 1e6);
      }
    }
    for (auto& [delta, delta_cdf] : by_delta) {
      bench::print_cdf_summary("  delta " + std::to_string(delta), delta_cdf,
                               "ms");
    }
  }
  return 0;
}
