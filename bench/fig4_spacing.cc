// Figure 4: CDF of inter-replica spacing time.
//
// Paper shape: on Backbones 1/2 about 90 % of streams have mean spacing
// under 8 ms and almost all under 50 ms; Backbones 3/4 (long-haul links)
// sit at larger spacings; larger TTL deltas mean more hops per turn and
// hence larger spacing.
#include <cstddef>
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/cdf.h"
#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 4: CDF of inter-replica spacing",
      "B1/B2: ~90% under 8 ms; B3/B4 larger (longer links); spacing grows "
      "with TTL delta");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    // mean_spacing_ns() is 0.0 for streams with fewer than two replicas —
    // not a real zero-spacing sample. Skip them explicitly so they can
    // never pollute the low end of the CDF, and report how many were
    // excluded (spacing_cdf_ms applies the same rule; the explicit filter
    // makes the bench independent of that helper's internals).
    std::vector<core::ReplicaStream> spaced;
    std::size_t skipped_sub2 = 0;
    for (const auto& stream : result.valid_streams) {
      if (stream.size() >= 2) {
        spaced.push_back(stream);
      } else {
        ++skipped_sub2;
      }
    }
    const auto cdf = core::spacing_cdf_ms(spaced);
    std::printf("\n%s\n", bench::cached_trace(k).link_name().c_str());
    bench::print_cdf_summary("spacing", cdf, "ms");
    if (skipped_sub2 > 0) {
      std::printf("  (excluded %zu sub-2-replica streams with undefined "
                  "spacing)\n",
                  skipped_sub2);
    }
    if (!cdf.empty()) {
      std::printf("  F(8ms)=%.3f  F(50ms)=%.3f\n",
                  cdf.fraction_at_or_below(8.0),
                  cdf.fraction_at_or_below(50.0));
    }
    // Per-delta breakdown: the spacing/hop-count relationship.
    std::map<int, analysis::EmpiricalCdf> by_delta;
    for (const auto& stream : result.valid_streams) {
      const int delta = stream.dominant_ttl_delta();
      if (delta > 0 && stream.size() >= 2) {
        by_delta[delta].add(stream.mean_spacing_ns() / 1e6);
      }
    }
    for (auto& [delta, delta_cdf] : by_delta) {
      bench::print_cdf_summary("  delta " + std::to_string(delta), delta_cdf,
                               "ms");
    }
  }
  return 0;
}
