// Figure 3: CDF of the number of replicas in a replica stream.
//
// Paper shape: jumps near 31 and 63 replicas, because initial TTLs of 64
// (Linux) and 128 (Windows 2000) burn down in delta-2 loops.
#include <cstdio>

#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 3: CDF of replicas per stream",
      "steps near 31 and 63 replicas from initial TTLs 64 and 128 in "
      "delta-2 loops");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const auto cdf = core::stream_size_cdf(result.valid_streams);
    std::printf("\n%s\n", bench::cached_trace(k).link_name().c_str());
    bench::print_cdf_summary("stream size", cdf, "replicas");
    if (!cdf.empty()) {
      std::printf("  F(30)=%.3f  F(32)=%.3f  (TTL-64 step)\n",
                  cdf.fraction_at_or_below(30), cdf.fraction_at_or_below(32));
      std::printf("  F(60)=%.3f  F(64)=%.3f  (TTL-128 step)\n",
                  cdf.fraction_at_or_below(60), cdf.fraction_at_or_below(64));
      bench::print_cdf_series(cdf, "replicas", 12);
    }
  }
  return 0;
}
