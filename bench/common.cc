#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "net/pcap.h"
#include "net/pcap_mmap.h"

namespace rloop::bench {

namespace {

std::string cache_dir() {
  if (const char* env = std::getenv("RLOOP_BENCH_CACHE")) return env;
  return "rloop_bench_cache";
}

// Bump when simulator/trafficgen/scenario internals change what a given
// spec produces; stale caches would silently misreport otherwise.
constexpr int kTraceFormatVersion = 2;

// Cache key covers everything that changes the trace.
std::string cache_path(const scenarios::BackboneSpec& spec) {
  const auto tag = "v" + std::to_string(kTraceFormatVersion) + "_" +
                   std::to_string(spec.seed) + "_" +
                   std::to_string(spec.duration / net::kSecond) + "_" +
                   std::to_string(static_cast<int>(spec.flows_per_second)) +
                   "_" + std::to_string(spec.igp_events) + "_" +
                   std::to_string(spec.bgp_events);
  return cache_dir() + "/backbone" + std::to_string(spec.index) + "_" + tag +
         ".pcap";
}

}  // namespace

const net::Trace& cached_trace(int k) {
  static std::map<int, net::Trace> traces;
  auto it = traces.find(k);
  if (it != traces.end()) return it->second;

  const auto spec = scenarios::backbone_spec(k);
  const auto path = cache_path(spec);
  if (std::filesystem::exists(path)) {
    std::fprintf(stderr, "# %s: loading cached trace %s\n", spec.name.c_str(),
                 path.c_str());
    auto trace = net::read_pcap_fast(path);
    trace.set_link_name(spec.name);
    return traces.emplace(k, std::move(trace)).first->second;
  }

  std::fprintf(stderr, "# %s: simulating (seed %llu) ...\n", spec.name.c_str(),
               static_cast<unsigned long long>(spec.seed));
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (!ec) {
    try {
      net::write_pcap(run->trace(), path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "# cache write failed (continuing): %s\n", e.what());
    }
  }
  return traces.emplace(k, run->trace()).first->second;
}

const core::LoopDetectionResult& cached_result(int k) {
  static std::map<int, core::LoopDetectionResult> results;
  auto it = results.find(k);
  if (it != results.end()) return it->second;
  return results.emplace(k, core::detect_loops(cached_trace(k))).first->second;
}

std::unique_ptr<scenarios::BackboneRun> fresh_run(int k) {
  const auto spec = scenarios::backbone_spec(k);
  std::fprintf(stderr, "# %s: simulating with ground truth ...\n",
               spec.name.c_str());
  auto run = scenarios::build_backbone(spec);
  scenarios::execute(*run);
  return run;
}

void print_cdf_summary(const std::string& label,
                       const analysis::EmpiricalCdf& cdf,
                       const std::string& unit) {
  if (cdf.empty()) {
    std::printf("%-12s  (no samples)\n", label.c_str());
    return;
  }
  std::printf(
      "%-12s  n=%-6zu p10=%-9.3g p50=%-9.3g p90=%-9.3g p99=%-9.3g max=%-9.3g "
      "%s\n",
      label.c_str(), cdf.size(), cdf.quantile(0.10), cdf.quantile(0.50),
      cdf.quantile(0.90), cdf.quantile(0.99), cdf.max(), unit.c_str());
}

void print_cdf_series(const analysis::EmpiricalCdf& cdf,
                      const std::string& x_name, std::size_t points) {
  if (cdf.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  std::printf("  %-14s cdf\n", x_name.c_str());
  for (const auto& [x, f] : cdf.points(points)) {
    std::printf("  %-14.4g %.3f\n", x, f);
  }
}

void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace rloop::bench
