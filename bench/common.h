// Shared support for the benchmark harnesses.
//
// Every bench binary regenerates the paper's four backbone traces
// deterministically. Simulating all four takes ~10 s, so traces are cached
// on disk as pcap (keyed by scenario parameters) and reloaded by later
// binaries; benches that need simulator ground truth (fates, loop
// crossings) re-run the simulation instead.
#pragma once

#include <memory>
#include <string>

#include "analysis/cdf.h"
#include "core/loop_detector.h"
#include "net/trace.h"
#include "scenarios/backbone.h"

namespace rloop::bench {

// The trace of backbone k (1..4), from the pcap cache when valid, else
// freshly simulated (and then cached). Cache lives in
// $RLOOP_BENCH_CACHE or ./rloop_bench_cache.
const net::Trace& cached_trace(int k);

// Full detection result on cached_trace(k); memoized per process.
const core::LoopDetectionResult& cached_result(int k);

// A fresh simulation (ground truth available); never cached.
std::unique_ptr<scenarios::BackboneRun> fresh_run(int k);

// Prints "<label>: p10=.. p50=.. p90=.. p99=.. max=.." on one line.
void print_cdf_summary(const std::string& label,
                       const analysis::EmpiricalCdf& cdf,
                       const std::string& unit);

// Prints a fixed set of (x, F(x)) rows for plotting-style output.
void print_cdf_series(const analysis::EmpiricalCdf& cdf,
                      const std::string& x_name, std::size_t points = 16);

// Standard header naming the experiment being reproduced.
void print_header(const std::string& experiment, const std::string& claim);

}  // namespace rloop::bench
