# Benchmark harnesses. Included from the top-level CMakeLists (not via
# add_subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains only runnable
# binaries: the canonical reproduction command is
#   for b in build/bench/*; do $b; done

add_library(rloop_bench_common ${CMAKE_SOURCE_DIR}/bench/common.cc)
target_include_directories(rloop_bench_common PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(rloop_bench_common
  PUBLIC rloop_scenarios rloop_core rloop_analysis rloop_baseline)

function(rloop_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE rloop_bench_common ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

rloop_bench(table1_traces)
rloop_bench(table2_loops)
rloop_bench(fig2_ttl_delta)
rloop_bench(fig3_stream_size)
rloop_bench(fig4_spacing)
rloop_bench(fig5_traffic_mix)
rloop_bench(fig6_looped_mix)
rloop_bench(fig7_dst_timeseries)
rloop_bench(fig8_stream_duration)
rloop_bench(fig9_loop_duration)
rloop_bench(impact_loss_delay)
rloop_bench(baseline_comparison)
rloop_bench(ablation_detector)
rloop_bench(micro_detector benchmark::benchmark)
rloop_bench(memory_layout benchmark::benchmark)
# bench_to_json doubles as the CI perf gate; its committed baseline is
# regenerated (on quiet >=4-core hardware) with
#   build/bench/bench_to_json --repetitions 7 --out bench/BENCH_pipeline.baseline.json
rloop_bench(bench_to_json rloop_daemon rloop_net)
rloop_bench(daemon_throughput benchmark::benchmark rloop_daemon)
rloop_bench(correlation_routing rloop_correlate)
rloop_bench(persistent_loops rloop_correlate)
rloop_bench(ablation_sampling)
rloop_bench(bidirectional_taps)
rloop_bench(parallel_scaling)
