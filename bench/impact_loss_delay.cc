// Section VI impact analysis: loss and delay effects of routing loops,
// scored against simulator ground truth (which the paper did not have).
//
// Paper claims reproduced here:
//  - loops can contribute a large share (up to ~90 %) of packet loss in the
//    minutes where they occur, while total loop loss stays small overall;
//  - a small fraction of looping packets escape their loop;
//  - escaping packets pick up tens to hundreds of ms of extra delay
//    (25-1300 ms in the paper), comparable to a full end-to-end delay.
#include <cstdio>
#include <vector>

#include "analysis/cdf.h"
#include "analysis/stats.h"
#include "common.h"
#include "core/impact.h"
#include "net/time.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Section VI: loss and delay impact of routing loops",
      "loop loss small overall but dominant in loop minutes; escapers gain "
      "25-1300 ms delay");

  for (int k = 1; k <= 4; ++k) {
    auto run = bench::fresh_run(k);
    const auto& fates = run->network->fates();

    // Ground truth per-minute loss: looped expiries vs all losses.
    analysis::RateSeries loop_loss(60.0), all_loss(60.0);
    analysis::EmpiricalCdf normal_delay_ms, escaped_delay_ms;
    std::uint64_t looped_total = 0, escaped = 0;
    for (const auto& fate : fates) {
      const double t = net::to_seconds(fate.ended);
      if (fate.kind != sim::FateKind::delivered &&
          fate.kind != sim::FateKind::in_flight) {
        all_loss.add(t);
        if (fate.loop_crossings > 0) loop_loss.add(t);
      }
      if (fate.loop_crossings > 0) {
        ++looped_total;
        if (fate.kind == sim::FateKind::delivered) {
          ++escaped;
          escaped_delay_ms.add(net::to_millis(fate.delay()));
        }
      } else if (fate.kind == sim::FateKind::delivered &&
                 !fate.is_icmp_generated) {
        normal_delay_ms.add(net::to_millis(fate.delay()));
      }
    }

    std::printf("\n%s\n", run->spec.name.c_str());
    std::printf("  packets injected        : %llu\n",
                static_cast<unsigned long long>(run->network->stats().injected));
    std::printf("  total losses            : %llu (%.3f%% of packets)\n",
                static_cast<unsigned long long>(all_loss.total()),
                100.0 * static_cast<double>(all_loss.total()) /
                    static_cast<double>(fates.size()));
    std::printf("  losses inside loops     : %llu\n",
                static_cast<unsigned long long>(loop_loss.total()));

    // Peak per-minute share of loss attributable to loops.
    double peak_share = 0.0;
    for (std::size_t m = 0; m < loop_loss.bins().size(); ++m) {
      const auto all_bin = m < all_loss.bins().size() ? all_loss.bins()[m] : 0;
      if (all_bin > 0) {
        peak_share = std::max(peak_share,
                              static_cast<double>(loop_loss.bins()[m]) /
                                  static_cast<double>(all_bin));
      }
    }
    std::printf("  peak per-minute loop share of loss: %.1f%%\n",
                peak_share * 100.0);

    if (looped_total > 0) {
      std::printf("  looped packets          : %llu, escaped %.2f%%\n",
                  static_cast<unsigned long long>(looped_total),
                  100.0 * static_cast<double>(escaped) /
                      static_cast<double>(looped_total));
    }
    if (!normal_delay_ms.empty()) {
      std::printf("  normal delivery delay   : p50=%.2f ms  p99=%.2f ms\n",
                  normal_delay_ms.quantile(0.5), normal_delay_ms.quantile(0.99));
    }
    if (!escaped_delay_ms.empty()) {
      std::printf("  escaped-packet delay    : p50=%.1f ms  max=%.1f ms  "
                  "(extra vs normal p50: +%.1f ms)\n",
                  escaped_delay_ms.quantile(0.5), escaped_delay_ms.max(),
                  escaped_delay_ms.quantile(0.5) -
                      (normal_delay_ms.empty() ? 0.0
                                               : normal_delay_ms.quantile(0.5)));
    }

    // Trace-side estimate (what the paper could compute) for comparison.
    const auto result = core::detect_loops(run->trace());
    const auto estimate = core::estimate_impact(result);
    std::printf("  trace-side estimate     : %llu streams, escape<=%.2f%%, "
                "loop-loss %llu pkts\n",
                static_cast<unsigned long long>(estimate.looped_streams),
                estimate.escape_fraction() * 100.0,
                static_cast<unsigned long long>(
                    estimate.loop_loss_per_minute.total()));
  }
  return 0;
}
