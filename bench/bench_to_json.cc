// Machine-readable pipeline benchmark for the CI regression gate.
//
// Runs the full detection pipeline (serial and 4-thread sharded) over the
// cached backbone trace, takes the best of N repetitions, and writes one
// JSON object with ns/packet, heap allocation counts, and peak RSS:
//
//   bench_to_json --out BENCH_pipeline.json
//
// With --baseline it additionally compares the measured ns/packet against a
// previously committed file and exits 1 when either the serial or the
// parallel figure regressed by more than --tolerance (default 0.15 = 15%).
// Allocation counts are deterministic and compared exactly (same tolerance
// applied, so incidental allocator/library churn does not flap the gate);
// RSS is informational only.
//
//   bench_to_json --baseline bench/BENCH_pipeline.baseline.json
//
// Two absolute gates ride along when --baseline is given (both same-run
// comparisons, so machine speed cancels out):
//  - parallel4 must beat serial by >= 2x. Skipped with a warning when the
//    runner has fewer than 4 hardware threads — the claim is about scaling,
//    and a 1-2 core box cannot exhibit it.
//  - the warm parallel4 run must allocate no more per packet than serial
//    (the persistent PipelineWorkspace makes the staged dataflow's steady
//    state allocation-free; tests/test_memory_layout.cc pins the same).
//
// The baseline lives in the repo (bench/BENCH_pipeline.baseline.json).
// Refresh it — on quiet hardware, best of several runs — whenever an
// intentional performance change shifts the numbers:
//
//   cmake --build build -j && build/bench/bench_to_json \
//       --repetitions 7 --out bench/BENCH_pipeline.baseline.json
#include <sys/resource.h>

#include <atomic>
#include <ctime>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <thread>

#include "common.h"
#include "core/loop_detector.h"
#include "core/pipeline.h"
#include "daemon/daemon.h"
#include "daemon/observability.h"
#include "net/http_server.h"
#include "telemetry/registry.h"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

// The nothrow forms must be replaced too: libstdc++'s std::get_temporary_buffer
// (stable_sort's merge buffer) allocates with nothrow new but releases through
// plain operator delete — leaving these to the runtime while overriding the
// plain forms above is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  double ns_per_packet = 0;
  double allocs_per_packet = 0;
};

// CPU time consumed by the calling thread so far. The scrape gate compares
// consumer CPU cost rather than wall clock: on a small (even single-core)
// box the scraper thread preempts the consumer, and that scheduler tax
// would drown the claim the gate actually pins — the consumer never blocks
// on, or does work for, the HTTP plane.
double thread_cpu_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

// Best-of-N wall time and the allocation count of one run. Minimum, not
// mean: scheduling noise only ever adds time.
Measurement measure(const rloop::net::Trace& trace,
                    const rloop::core::LoopDetectorConfig& config,
                    int repetitions) {
  const auto n = static_cast<double>(trace.size());
  Measurement best;
  best.ns_per_packet = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    auto result = rloop::core::detect_loops(trace, config);
    const auto t1 = Clock::now();
    const auto allocs = g_alloc_count.load(std::memory_order_relaxed) -
                        allocs_before;
    if (result.total_records != trace.size()) {
      std::cerr << "bench_to_json: pipeline dropped records\n";
      std::exit(2);
    }
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        n;
    if (ns < best.ns_per_packet) best.ns_per_packet = ns;
    best.allocs_per_packet = static_cast<double>(allocs) / n;
  }
  return best;
}

// Best-of-N end-to-end daemon ns/packet over `trace`. `threads` is 1
// (inline: source drained on the calling thread) or 2 (ring mode: producer
// thread + detection thread over the lock-free SPSC ring, block policy so
// nothing drops and every packet is measured). A non-empty `checkpoint_dir`
// turns on crash-safe snapshots (the ops configuration) so the gate can pin
// their overhead. With `cpu_ns_per_packet` (inline mode only, where the
// calling thread IS the consumer) the best-of-N consumer CPU figure is
// reported too.
double measure_daemon(const rloop::net::Trace& trace, int threads,
                      int repetitions,
                      const std::string& checkpoint_dir = "",
                      double* cpu_ns_per_packet = nullptr) {
  double best = 1e300;
  double best_cpu = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    if (!checkpoint_dir.empty()) {
      // Fresh dir per repetition, or the next daemon would restore the
      // previous one's final snapshot and skip the whole trace.
      std::filesystem::remove_all(checkpoint_dir);
      std::filesystem::create_directories(checkpoint_dir);
    }
    rloop::daemon::DaemonConfig config;
    config.use_ring = threads == 2;
    config.back_pressure = rloop::daemon::BackPressure::block;
    config.checkpoint_dir = checkpoint_dir;
    config.checkpoint_interval = 30 * rloop::net::kSecond;  // trace time
    rloop::daemon::Daemon d(
        config,
        std::make_unique<rloop::daemon::ReplaySource>(&trace, "bench", 0),
        nullptr);
    const double c0 = thread_cpu_ns();
    const auto t0 = Clock::now();
    const auto stats = d.run();
    const auto t1 = Clock::now();
    const double c1 = thread_cpu_ns();
    if (stats.consumed != trace.size() || !stats.invariant_ok()) {
      std::cerr << "bench_to_json: daemon lost records\n";
      std::exit(2);
    }
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(trace.size());
    if (ns < best) best = ns;
    const double cpu = (c1 - c0) / static_cast<double>(trace.size());
    if (cpu < best_cpu) best_cpu = cpu;
  }
  if (cpu_ns_per_packet) *cpu_ns_per_packet = best_cpu;
  return best;
}

// Best-of-N inline-daemon ns/packet with the observability plane live and
// a scraper pulling /metrics + /status at 10 Hz for the whole run. The hub
// publishes with try_lock, so the gate below pins the whole claim: a
// concurrent scraper costs the hot path (almost) nothing.
double measure_daemon_http(const rloop::net::Trace& trace, int repetitions,
                           double* cpu_ns_per_packet = nullptr) {
  double best = 1e300;
  double best_cpu = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    rloop::daemon::DaemonConfig config;
    config.use_ring = false;
    config.back_pressure = rloop::daemon::BackPressure::block;
    rloop::telemetry::Registry registry;
    rloop::daemon::ObservabilityHub hub;
    rloop::daemon::ObservabilityServer server(&hub, &registry);
    std::string error;
    if (!server.start(&error)) {
      std::cerr << "bench_to_json: http server: " << error << "\n";
      std::exit(2);
    }
    rloop::daemon::Daemon d(
        config,
        std::make_unique<rloop::daemon::ReplaySource>(&trace, "bench", 0),
        nullptr, &registry);
    d.attach_observability(&hub);

    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_acquire)) {
        int status = 0;
        std::string body, err;
        rloop::net::http_get(server.port(), "/metrics", &status, &body, &err);
        rloop::net::http_get(server.port(), "/status", &status, &body, &err);
        for (int i = 0; i < 10 && !stop.load(std::memory_order_acquire); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });

    const double c0 = thread_cpu_ns();
    const auto t0 = Clock::now();
    const auto stats = d.run();
    const auto t1 = Clock::now();
    const double c1 = thread_cpu_ns();
    stop.store(true, std::memory_order_release);
    scraper.join();
    server.stop();
    if (stats.consumed != trace.size() || !stats.invariant_ok()) {
      std::cerr << "bench_to_json: daemon lost records under scrape\n";
      std::exit(2);
    }
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(trace.size());
    if (ns < best) best = ns;
    const double cpu = (c1 - c0) / static_cast<double>(trace.size());
    if (cpu < best_cpu) best_cpu = cpu;
  }
  if (cpu_ns_per_packet) *cpu_ns_per_packet = best_cpu;
  return best;
}

long peak_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

// Minimal extractor for the flat one-object JSON this tool itself writes:
// finds `"key": <number>`. Returns NaN when the key is absent.
double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

bool check_regression(const std::string& name, double baseline, double now,
                      double tolerance) {
  if (std::isnan(baseline)) {
    // A freshly added metric has no committed figure yet; warn instead of
    // failing so the baseline can be refreshed in its own change.
    std::cout << "SKIP  " << name << ": " << now
              << " (field missing from baseline)\n";
    return true;
  }
  const double limit = baseline * (1.0 + tolerance);
  const bool ok = now <= limit;
  std::cout << (ok ? "OK  " : "FAIL") << "  " << name << ": " << now
            << " (baseline " << baseline << ", limit " << limit << ")\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pipeline.json";
  std::string baseline_path;
  double tolerance = 0.15;
  int repetitions = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_to_json: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--tolerance") {
      tolerance = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--repetitions") {
      repetitions = std::atoi(next().c_str());
    } else {
      std::cerr << "usage: bench_to_json [--out FILE] [--baseline FILE]"
                << " [--tolerance F] [--repetitions N]\n";
      return 2;
    }
  }

  const auto& trace = rloop::bench::cached_trace(3);

  rloop::core::LoopDetectorConfig serial_config;
  const auto serial = measure(trace, serial_config, repetitions);

  // The workspace persists across repetitions, so every rep after the first
  // measures the warm steady state: pool, SoA columns, batch rings, detect
  // states and validator/merger scratch all reused. allocs_per_packet keeps
  // the LAST rep's count, i.e. the warm figure the parity gate below pins.
  rloop::core::PipelineWorkspace workspace;
  rloop::core::LoopDetectorConfig parallel_config;
  parallel_config.parallel.num_threads = 4;
  parallel_config.parallel.shard_bits = 4;
  parallel_config.workspace = &workspace;
  const auto parallel = measure(trace, parallel_config, repetitions);

  double daemon1_cpu = 0.0;
  const double daemon1 = measure_daemon(trace, 1, repetitions, "", &daemon1_cpu);
  const double daemon2 = measure_daemon(trace, 2, repetitions);

  // The ops configuration: crash-safe snapshots every 10 s of trace time.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "rloop_bench_ckpt").string();
  const double daemon1_ckpt = measure_daemon(trace, 1, repetitions, ckpt_dir);
  std::filesystem::remove_all(ckpt_dir);

  // The observed configuration: a 10 Hz Prometheus scraper attached for the
  // whole run.
  double daemon1_http_cpu = 0.0;
  const double daemon1_http =
      measure_daemon_http(trace, repetitions, &daemon1_http_cpu);

  std::ostringstream json;
  json << "{\n"
       << "  \"trace_records\": " << trace.size() << ",\n"
       << "  \"repetitions\": " << repetitions << ",\n"
       << "  \"serial_ns_per_packet\": " << serial.ns_per_packet << ",\n"
       << "  \"serial_allocs_per_packet\": " << serial.allocs_per_packet
       << ",\n"
       << "  \"parallel4_ns_per_packet\": " << parallel.ns_per_packet << ",\n"
       << "  \"parallel4_allocs_per_packet\": " << parallel.allocs_per_packet
       << ",\n"
       << "  \"daemon1_ns_per_packet\": " << daemon1 << ",\n"
       << "  \"daemon2_ns_per_packet\": " << daemon2 << ",\n"
       << "  \"daemon1_ckpt_ns_per_packet\": " << daemon1_ckpt << ",\n"
       << "  \"daemon1_http_ns_per_packet\": " << daemon1_http << ",\n"
       << "  \"peak_rss_kb\": " << peak_rss_kb() << "\n"
       << "}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  if (out.fail()) {
    std::cerr << "bench_to_json: cannot write " << out_path << "\n";
    return 2;
  }
  std::cout << json.str();

  if (baseline_path.empty()) return 0;

  std::ifstream in(baseline_path);
  if (!in) {
    std::cerr << "bench_to_json: cannot read baseline " << baseline_path
              << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string baseline = buf.str();

  bool ok = true;
  ok &= check_regression("serial_ns_per_packet",
                         json_number(baseline, "serial_ns_per_packet"),
                         serial.ns_per_packet, tolerance);
  ok &= check_regression("parallel4_ns_per_packet",
                         json_number(baseline, "parallel4_ns_per_packet"),
                         parallel.ns_per_packet, tolerance);
  ok &= check_regression("serial_allocs_per_packet",
                         json_number(baseline, "serial_allocs_per_packet"),
                         serial.allocs_per_packet, tolerance);
  ok &= check_regression("parallel4_allocs_per_packet",
                         json_number(baseline, "parallel4_allocs_per_packet"),
                         parallel.allocs_per_packet, tolerance);
  ok &= check_regression("daemon1_ns_per_packet",
                         json_number(baseline, "daemon1_ns_per_packet"),
                         daemon1, tolerance);
  ok &= check_regression("daemon2_ns_per_packet",
                         json_number(baseline, "daemon2_ns_per_packet"),
                         daemon2, tolerance);
  ok &= check_regression("daemon1_http_ns_per_packet",
                         json_number(baseline, "daemon1_http_ns_per_packet"),
                         daemon1_http, tolerance);

  // Checkpointing overhead is pinned against the SAME run's plain daemon
  // figure, not the committed baseline. The bench replays 90 s of traffic
  // at max speed, which inflates snapshot cost relative to wall time by the
  // speed-up factor — so the production claim ("an always-on daemon at
  // capture rate spends <2% of its time on snapshots") is checked by
  // amortizing the measured extra nanoseconds over the trace's own
  // duration, with 0.5 ms absolute grace per run for timer jitter.
  {
    const auto duration_ns = static_cast<double>(
        trace[trace.size() - 1].ts - trace[0].ts);
    const double extra_ns =
        (daemon1_ckpt - daemon1) * static_cast<double>(trace.size());
    const double fraction = (extra_ns - 500'000.0) / duration_ns;
    const bool ckpt_ok = fraction <= 0.02;
    std::cout << (ckpt_ok ? "OK  " : "FAIL")
              << "  checkpoint_overhead_fraction: " << fraction
              << " (extra " << extra_ns / 1e6 << " ms over "
              << duration_ns / 1e9 << " s of trace, limit 0.02)\n";
    ok &= ckpt_ok;
  }

  // The never-block claim, measured: a 10 Hz scraper may cost the consumer
  // at most 3% over the same run's plain daemon figure. Same-run
  // comparison (not the committed baseline) so machine speed cancels out,
  // and consumer-thread CPU time (not wall clock) so scheduler preemption
  // by the scraper thread on a small box does not count as "blocking";
  // 1 ms absolute grace over the whole trace for timer jitter.
  {
    const double extra_ns = (daemon1_http_cpu - daemon1_cpu) *
                            static_cast<double>(trace.size());
    const double limit_ns =
        0.03 * daemon1_cpu * static_cast<double>(trace.size()) + 1'000'000.0;
    const bool http_ok = extra_ns <= limit_ns;
    std::cout << (http_ok ? "OK  " : "FAIL")
              << "  http_scrape_overhead: " << extra_ns / 1e6
              << " ms extra consumer CPU (" << daemon1_http_cpu << " vs "
              << daemon1_cpu << " ns/pkt; limit " << limit_ns / 1e6
              << " ms = 3% of daemon1 CPU + 1 ms grace)\n";
    ok &= http_ok;
  }

  // The scaling claim, same-run so machine speed cancels out: the staged
  // dataflow on 4 threads must finish the trace at least twice as fast as
  // the serial pipeline. On fewer than 4 hardware threads the claim cannot
  // be exhibited (the threads time-slice one another), so the gate skips
  // with a warning instead of flapping on small runners.
  {
    const unsigned cores = std::thread::hardware_concurrency();
    const double speedup = serial.ns_per_packet / parallel.ns_per_packet;
    if (cores < 4) {
      std::cout << "SKIP  parallel4_speedup: " << speedup << "x ("
                << cores << " hardware thread(s) < 4 -- the >=2x gate "
                << "needs a >=4-core runner)\n";
    } else {
      const bool fast = speedup >= 2.0;
      std::cout << (fast ? "OK  " : "FAIL") << "  parallel4_speedup: "
                << speedup << "x (serial " << serial.ns_per_packet
                << " / parallel4 " << parallel.ns_per_packet
                << " ns/packet, limit >= 2x)\n";
      ok &= fast;
    }
  }

  // Steady-state allocation parity: the warm workspace run (last rep) must
  // allocate no more per packet than serial. Absolute, not baseline-relative
  // — allocation counts are deterministic.
  {
    const bool lean = parallel.allocs_per_packet <= serial.allocs_per_packet;
    std::cout << (lean ? "OK  " : "FAIL")
              << "  parallel4_allocs_vs_serial: " << parallel.allocs_per_packet
              << " (serial " << serial.allocs_per_packet
              << ", warm parallel must not exceed it)\n";
    ok &= lean;
  }
  return ok ? 0 : 1;
}
