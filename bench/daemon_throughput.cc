// Daemon hot-path microbenchmarks.
//
//   BM_SpscRingPushPop      one push + one pop on an otherwise-empty ring:
//                           the per-record synchronization floor (ns/op)
//   BM_SpscRingTransfer     1M records shipped producer->consumer across
//                           real threads, batch drains (ns/record)
//   BM_DaemonEndToEnd/1     full daemon over the cached Backbone 3 trace,
//                           inline mode (no ring, one thread)
//   BM_DaemonEndToEnd/2     same, ring mode (producer + consumer thread)
//
// The 1-vs-2-thread pair bounds what the ring boundary costs (or hides):
// inline pays zero synchronization, ring overlaps source decode with
// detection at the price of one push+pop per record. bench_to_json measures
// the same two figures for the CI regression gate.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <thread>

#include "common.h"
#include "daemon/daemon.h"

namespace {

using rloop::daemon::BackPressure;
using rloop::daemon::Daemon;
using rloop::daemon::DaemonConfig;
using rloop::daemon::ReplaySource;
using rloop::daemon::SpscRing;

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<rloop::net::TraceRecord> ring(1024);
  rloop::net::TraceRecord rec{};
  rec.cap_len = 28;
  rloop::net::TraceRecord out{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(rec));
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingTransfer(benchmark::State& state) {
  constexpr std::uint64_t kCount = 1'000'000;
  for (auto _ : state) {
    SpscRing<std::uint64_t> ring(4096);
    std::thread producer([&ring] {
      for (std::uint64_t i = 0; i < kCount; ++i) {
        while (!ring.try_push(i)) std::this_thread::yield();
      }
    });
    std::uint64_t out[256];
    std::uint64_t received = 0;
    std::uint64_t checksum = 0;
    while (received < kCount) {
      const std::size_t n = ring.pop_batch(out, 256);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      received += n;
      checksum += out[n - 1];
    }
    producer.join();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kCount));
}
BENCHMARK(BM_SpscRingTransfer)->Unit(benchmark::kMillisecond);

void BM_DaemonEndToEnd(benchmark::State& state) {
  const bool use_ring = state.range(0) == 2;
  const auto& trace = rloop::bench::cached_trace(3);
  for (auto _ : state) {
    DaemonConfig config;
    config.use_ring = use_ring;
    config.back_pressure = BackPressure::block;
    Daemon d(config,
             std::make_unique<ReplaySource>(&trace, "bench", /*speed=*/0),
             nullptr);
    const auto stats = d.run();
    if (stats.consumed != trace.size() || !stats.invariant_ok()) {
      state.SkipWithError("daemon lost records");
      return;
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_DaemonEndToEnd)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
