// Ablations over the detector's design choices (Section IV):
//  - merge gap 1 vs 2 vs 5 minutes: the paper reports the loop count barely
//    changes ("we also tried 2 and 5 minute intervals");
//  - minimum stream size 2 vs 3: dropping the size-3 rule admits link-layer
//    duplicates as "loops";
//  - minimum TTL delta 2 vs 3: raising it discards genuine adjacent-router
//    loops;
//  - aggregation /24 vs /16: coarser prefixes make validation reject
//    streams because unrelated healthy traffic shares the aggregate.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "common.h"
#include "core/loop_detector.h"
#include "net/time.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Ablation: detector parameter choices (Section IV)",
      "1 vs 2 vs 5 min merge gaps give similar loop counts; min-size and "
      "min-delta rules are load-bearing");

  // Merge-gap sensitivity.
  std::printf("\n[1] merge gap sensitivity\n");
  analysis::TextTable gap_table(
      {"Trace", "loops @1min", "loops @2min", "loops @5min"});
  for (int k = 1; k <= 4; ++k) {
    std::vector<std::string> row = {bench::cached_trace(k).link_name()};
    for (const net::TimeNs gap :
         {net::kMinute, 2 * net::kMinute, 5 * net::kMinute}) {
      core::LoopDetectorConfig cfg;
      cfg.merger.merge_gap = gap;
      const auto result = core::detect_loops(bench::cached_trace(k), cfg);
      row.push_back(std::to_string(result.loops.size()));
    }
    gap_table.add_row(row);
  }
  gap_table.print(std::cout);

  // Validation thresholds.
  std::printf("\n[2] validation thresholds (Backbones 1 and 2)\n");
  analysis::TextTable val_table({"Config", "B1 streams", "B1 loops",
                                 "B2 streams", "B2 loops"});
  struct Variant {
    const char* name;
    core::LoopDetectorConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper (size>=3, delta>=2)", {}});
  {
    core::LoopDetectorConfig cfg;
    cfg.validator.min_replicas = 2;
    variants.push_back({"size>=2 (admits link dups)", cfg});
  }
  {
    core::LoopDetectorConfig cfg;
    cfg.detector.min_ttl_delta = 3;
    variants.push_back({"delta>=3 (misses 2-router loops)", cfg});
  }
  {
    core::LoopDetectorConfig cfg;
    cfg.detector.keep_link_layer_duplicates = false;
    variants.push_back({"drop equal-TTL duplicates", cfg});
  }
  for (const auto& variant : variants) {
    std::vector<std::string> row = {variant.name};
    for (int k : {1, 2}) {
      const auto result = core::detect_loops(bench::cached_trace(k),
                                             variant.cfg);
      row.push_back(std::to_string(result.valid_streams.size()));
      row.push_back(std::to_string(result.loops.size()));
    }
    val_table.add_row(row);
  }
  val_table.print(std::cout);

  std::printf(
      "\nNote: /24 aggregation is built into the pipeline as the longest\n"
      "prefix tier-1 ISPs honor (paper IV-A.2); coarser aggregation would\n"
      "merge unrelated destinations into one validation unit.\n");
  return 0;
}
