// Figure 8: CDF of replica stream duration.
//
// Paper shape: most streams last under ~500 ms with step patterns set by
// (initial TTL / TTL delta) x spacing; Backbone 4 shows three distinct steps
// from its three dominant initial TTLs (32/64/128).
#include <cstdio>

#include "common.h"
#include "core/metrics.h"

using namespace rloop;

int main() {
  bench::print_header(
      "Figure 8: CDF of replica stream duration",
      "stepwise CDFs; B4 shows three steps from initial TTLs 32/64/128");

  for (int k = 1; k <= 4; ++k) {
    const auto& result = bench::cached_result(k);
    const auto cdf = core::stream_duration_cdf_ms(result.valid_streams);
    std::printf("\n%s\n", bench::cached_trace(k).link_name().c_str());
    bench::print_cdf_summary("duration", cdf, "ms");
    if (!cdf.empty()) {
      bench::print_cdf_series(cdf, "duration_ms", 14);
    }
  }
  return 0;
}
